"""A constant duty-cycle load: *percent* of max-frequency capacity, forever.

Used for Dom0's housekeeping (§5.3 allocates Dom0 10 % of credit; its actual
consumption is light) and as the simplest demand source in tests.
"""

from __future__ import annotations

from ..sim import PeriodicTimer
from ..units import check_percent, check_positive
from .base import Workload


class ConstantLoad(Workload):
    """Injects ``percent/100 * injection_period`` absolute seconds per period.

    Parameters
    ----------
    percent:
        Demand rate as a percentage of the host's max-frequency capacity.
    injection_period:
        Seconds between demand batches.  Small values give a smooth load;
        50 ms is far below the 1 s monitoring window.
    start_at / stop_at:
        Optional active window (defaults: start immediately, never stop).
    """

    def __init__(
        self,
        percent: float,
        *,
        injection_period: float = 0.05,
        start_at: float = 0.0,
        stop_at: float | None = None,
    ) -> None:
        super().__init__()
        self.percent = check_percent(percent, "percent")
        self.injection_period = check_positive(injection_period, "injection_period")
        self.start_at = start_at
        self.stop_at = stop_at
        self._timer: PeriodicTimer | None = None
        self._work_per_period = self.percent / 100.0 * self.injection_period
        self.injected_work = 0.0

    def start(self) -> None:
        self._timer = PeriodicTimer(
            self.engine,
            self.injection_period,
            self._inject,
            label=f"constant-load.{self.domain.name}",
            fire_immediately=True,
        )
        if self.start_at > self.engine.now:
            self.engine.schedule(
                self.start_at - self.engine.now,
                self._timer.start,
                label=f"constant-load.{self.domain.name}.begin",
            )
        else:
            self._timer.start()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def _inject(self, now: float) -> None:
        if self.stop_at is not None and now >= self.stop_at:
            self.stop()
            return
        # Same expression every fire; hoisting it would still re-derive the
        # identical float, so compute once and reuse.
        work = self._work_per_period
        self.injected_work += work
        self.domain.add_work(work)
