"""Trace-driven demand: replay a (time, demand%) series as CPU load.

The paper's motivation cites hosting-center servers running "below 30% of
processor utilization" most of the time — the diurnal, bursty reality that
makes DVFS worthwhile.  :class:`TraceLoad` replays any recorded utilisation
trace against a domain, and :class:`SyntheticTrace` generates realistic
diurnal traces (base load + day/night swing + seeded noise + bursts) when no
production trace is available, per the substitution rule in DESIGN.md.
"""

from __future__ import annotations

import csv
import math
import pathlib
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError, WorkloadError
from ..sim import PeriodicTimer
from ..units import check_non_negative, check_positive
from .base import Workload

#: Header names recognised as the time column (case-insensitive).
TIME_COLUMNS = ("time", "t", "seconds", "timestamp")
#: Header names recognised as the utilisation column (case-insensitive).
PERCENT_COLUMNS = ("percent", "utilisation", "utilization", "util", "load", "cpu", "demand")


@dataclass(frozen=True, slots=True)
class TracePoint:
    """Demand of *percent* (absolute, of max capacity) from time *start*."""

    start: float
    percent: float

    def __post_init__(self) -> None:
        check_non_negative(self.start, "start")
        check_non_negative(self.percent, "percent")


def load_trace_csv(path: str | pathlib.Path) -> list[TracePoint]:
    """Parse a real utilisation time-series CSV into trace points.

    Two layouts are accepted:

    * a header row naming a time column (one of :data:`TIME_COLUMNS`) and a
      utilisation column (one of :data:`PERCENT_COLUMNS`), matched
      case-insensitively — extra columns are ignored;
    * headerless rows whose first two columns are numeric
      ``time, percent`` pairs.

    Blank lines are skipped; any non-numeric data row raises a
    :class:`~repro.errors.WorkloadError` naming the file and line.  The
    returned points plug straight into :class:`TraceLoad` (which sorts them
    and rejects duplicate times) or, via ``WorkloadSpec(kind="trace",
    trace_file=...)``, into any declarative scenario.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise WorkloadError(f"cannot read trace file {path}: {error}") from None
    rows = [
        (number, row)
        for number, row in enumerate(csv.reader(text.splitlines()), start=1)
        if row and any(cell.strip() for cell in row)
    ]
    if not rows:
        raise WorkloadError(f"trace file {path} holds no data rows")
    first = [cell.strip() for cell in rows[0][1]]
    time_col, percent_col = 0, 1
    try:
        float(first[0])
    except (ValueError, IndexError):
        header = [cell.strip().lower() for cell in first]
        time_col = next((header.index(n) for n in TIME_COLUMNS if n in header), None)
        percent_col = next(
            (header.index(n) for n in PERCENT_COLUMNS if n in header), None
        )
        if time_col is None or percent_col is None:
            raise WorkloadError(
                f"trace file {path} header {first!r} names no recognised "
                f"time ({', '.join(TIME_COLUMNS)}) and utilisation "
                f"({', '.join(PERCENT_COLUMNS)}) columns"
            ) from None
        rows = rows[1:]
        if not rows:
            raise WorkloadError(
                f"trace file {path} holds a header but no data rows"
            ) from None
    points = []
    for number, row in rows:
        try:
            start = float(row[time_col])
            percent = float(row[percent_col])
        except (ValueError, IndexError):
            raise WorkloadError(
                f"trace file {path} line {number}: expected numeric "
                f"time/percent columns, got {row!r}"
            ) from None
        try:
            points.append(TracePoint(start=start, percent=percent))
        except ConfigurationError as error:
            raise WorkloadError(
                f"trace file {path} line {number}: {error}"
            ) from None
    return points


class TraceLoad(Workload):
    """Replays a piecewise-constant demand trace onto a domain.

    Parameters
    ----------
    points:
        The trace, as :class:`TracePoint` entries (sorted internally).
    injection_period:
        Granularity of demand injection.
    repeat:
        Loop the trace when simulated time passes its last point (the trace
        duration is taken as the last point's start time; a zero-demand
        tail point defines the period).
    """

    def __init__(
        self,
        points: Sequence[TracePoint],
        *,
        injection_period: float = 0.05,
        repeat: bool = False,
    ) -> None:
        super().__init__()
        if not points:
            raise WorkloadError("a trace needs at least one point")
        ordered = sorted(points, key=lambda point: point.start)
        starts = [point.start for point in ordered]
        if len(set(starts)) != len(starts):
            raise WorkloadError(f"duplicate trace point times: {starts}")
        self._points: tuple[TracePoint, ...] = tuple(ordered)
        self.injection_period = check_positive(injection_period, "injection_period")
        self.repeat = repeat
        self._timer: PeriodicTimer | None = None
        self.injected_work = 0.0

    @property
    def points(self) -> tuple[TracePoint, ...]:
        """The trace, sorted by time."""
        return self._points

    @property
    def duration(self) -> float:
        """Trace length (start of the final point)."""
        return self._points[-1].start

    def demand_at(self, time: float) -> float:
        """Demand in percent at *time* (with wrap-around when repeating)."""
        if self.repeat and self.duration > 0:
            time = time % self.duration
        demand = 0.0
        for point in self._points:
            if time >= point.start:
                demand = point.percent
            else:
                break
        return demand

    def start(self) -> None:
        self._timer = PeriodicTimer(
            self.engine,
            self.injection_period,
            self._inject,
            label=f"trace.{self.domain.name}",
            fire_immediately=True,
        )
        self._timer.start()

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def _inject(self, now: float) -> None:
        demand = self.demand_at(now)
        if demand <= 0.0:
            return
        work = demand / 100.0 * self.injection_period
        self.injected_work += work
        self.domain.add_work(work)


class SyntheticTrace:
    """Generator of diurnal utilisation traces.

    Produces a day-long (scaled) pattern: a base load, a sinusoidal
    day/night swing, seeded Gaussian noise, plus optional short bursts —
    the classic shape of the hosting-center traces the paper's motivation
    describes.

    Parameters
    ----------
    base_percent / swing_percent:
        Mean demand and day/night amplitude (demand stays clamped >= 0).
    noise_percent:
        Standard deviation of the per-sample Gaussian noise.
    burst_percent / bursts:
        Height and count of evenly spread short bursts (0 = none).
    day_length:
        Simulated seconds per "day".
    step:
        Trace resolution in seconds.
    """

    def __init__(
        self,
        *,
        base_percent: float = 25.0,
        swing_percent: float = 15.0,
        noise_percent: float = 3.0,
        burst_percent: float = 30.0,
        bursts: int = 2,
        day_length: float = 400.0,
        step: float = 5.0,
    ) -> None:
        self.base_percent = check_non_negative(base_percent, "base_percent")
        self.swing_percent = check_non_negative(swing_percent, "swing_percent")
        self.noise_percent = check_non_negative(noise_percent, "noise_percent")
        self.burst_percent = check_non_negative(burst_percent, "burst_percent")
        if bursts < 0:
            raise WorkloadError(f"bursts must be >= 0, got {bursts}")
        self.bursts = bursts
        self.day_length = check_positive(day_length, "day_length")
        self.step = check_positive(step, "step")

    def generate(self, rng) -> list[TracePoint]:
        """Build one day of trace points using *rng* (a random.Random)."""
        points: list[TracePoint] = []
        steps = int(self.day_length / self.step)
        burst_slots = set()
        if self.bursts:
            for index in range(self.bursts):
                centre = int((index + 0.5) * steps / self.bursts)
                burst_slots.update({centre - 1, centre, centre + 1})
        for index in range(steps):
            t = index * self.step
            phase = 2.0 * math.pi * t / self.day_length
            demand = self.base_percent - self.swing_percent * math.cos(phase)
            demand += rng.gauss(0.0, self.noise_percent)
            if index in burst_slots:
                demand += self.burst_percent
            points.append(TracePoint(start=t, percent=max(0.0, min(100.0, demand))))
        points.append(TracePoint(start=self.day_length, percent=0.0))
        return points
