"""The httperf-style open-loop request injector (§5.1).

httperf sends requests at a configured rate regardless of whether the server
keeps up — an *open-loop* generator.  The injector converts a
:class:`~repro.workloads.profiles.LoadProfile` into batches of requests every
*injection_period* seconds.  Deterministic fluid batches by default (exact
fractional request counts); optional Poisson arrivals reproduce the bursty
behaviour of real injectors.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..sim import Engine, PeriodicTimer
from ..units import check_positive
from .profiles import LoadProfile


class HttperfInjector:
    """Delivers request batches to a sink callback.

    Parameters
    ----------
    engine:
        The simulation engine.
    profile:
        The request-rate schedule.
    sink:
        ``sink(n_requests, now)`` called each batch; fractional counts are
        carried over (fluid model) so long-run rates are exact.
    injection_period:
        Seconds between batches.
    poisson:
        Draw batch sizes from a Poisson distribution instead of the exact
        fluid count (uses the stream *rng*).
    rng:
        ``random.Random`` for Poisson mode.
    """

    def __init__(
        self,
        engine: Engine,
        profile: LoadProfile,
        sink: Callable[[float, float], None],
        *,
        injection_period: float = 0.05,
        poisson: bool = False,
        rng=None,
    ) -> None:
        self._engine = engine
        self._profile = profile
        self._sink = sink
        self.injection_period = check_positive(injection_period, "injection_period")
        self._poisson = poisson
        self._rng = rng
        if poisson and rng is None:
            raise ConfigurationError("poisson mode needs an rng stream")
        self._timer = PeriodicTimer(
            engine, self.injection_period, self._fire, label="httperf", fire_immediately=True
        )
        self._carry = 0.0
        self.requests_sent = 0.0
        # O(1) amortised rate lookup: _fire times are monotone, so a phase
        # cursor replaces LoadProfile.rate_at's per-call scan.  Identical
        # rates by construction (same phase tuple, same boundaries).
        phases = profile.phases
        self._phase_starts = tuple(phase.start for phase in phases)
        self._phase_rates = tuple(phase.rate_rps for phase in phases)
        self._phase_cursor = 0
        self._retire_at = profile.end_of_activity
        self._retired = False

    @property
    def retired(self) -> bool:
        """True once the injector stopped itself at the profile's end.

        After :attr:`~repro.workloads.profiles.LoadProfile.end_of_activity`
        the rate is zero forever and a fire's only effect would be resetting
        an already-zero carry, so the timer retires instead of stepping
        no-op events through the dead tail of the run (skip-ahead: the heap
        simply never sees them).
        """
        return self._retired

    def start(self) -> None:
        """Begin injecting."""
        self._timer.start()

    def stop(self) -> None:
        """Stop injecting."""
        self._timer.stop()

    @property
    def profile(self) -> LoadProfile:
        """The rate schedule driving this injector."""
        return self._profile

    def _fire(self, now: float) -> None:
        starts = self._phase_starts
        cursor = self._phase_cursor
        last = len(starts) - 1
        while cursor < last and starts[cursor + 1] <= now:
            cursor += 1
        self._phase_cursor = cursor
        rate = self._phase_rates[cursor] if now >= starts[cursor] else 0.0
        if rate <= 0.0:
            self._carry = 0.0
            if now >= self._retire_at:
                self._retired = True
                self._timer.stop()
            return
        expected = rate * self.injection_period
        if self._poisson:
            count = float(self._poisson_sample(expected))
        else:
            # Fluid model with carry: exact long-run rate even when the
            # per-batch expectation is fractional.
            total = expected + self._carry
            count = total
            self._carry = 0.0
        if count > 0:
            self.requests_sent += count
            self._sink(count, now)

    def _poisson_sample(self, mean: float) -> int:
        # Knuth's method; fine for the small per-batch means used here.
        import math

        threshold = math.exp(-mean)
        count = 0
        product = self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count
