"""Day-shape catalog: named, seeded utilisation-day generators.

The paper motivates DVFS with hosting-center servers running "below 30% of
processor utilization" most of the time — but *which* 30% matters to an
orchestrator.  This catalog names the canonical day shapes a datacenter
fleet mixes (each a deterministic function of a ``random.Random`` stream),
so heterogeneous fleets are one config line instead of a page of
:class:`~repro.workloads.trace.SyntheticTrace` parameters:

``diurnal-office``
    Quiet nights, a 9-to-5 plateau with a lunch dip — interactive office
    traffic.
``weekend``
    The same customers on a Saturday: a gentle midday bump at a fraction
    of the weekday level.
``flash-crowd``
    A light diurnal baseline broken by one sudden viral spike (seeded
    onset) that decays exponentially — the capacity-planning nightmare.
``batch-overnight``
    Near-idle days, a heavy sustained processing block through the night
    window — ETL/backup fleets.
``noisy-neighbor``
    A moderate base with frequent random bursts — the co-tenant nobody
    wants.

Every shape yields :class:`~repro.workloads.trace.TracePoint` lists ending
in a zero tail at ``day_length`` (so :class:`~repro.workloads.trace.
TraceLoad` can repeat them as whole days), plugs into cluster populations
(``ClusterScenarioConfig.dayshapes``) and single-host scenarios
(``WorkloadSpec(kind="trace", dayshape=...)``), and can be materialised as
a CSV (:func:`dayshape_csv`) for the ``trace_file`` path — the catalog sits
*on top of* :func:`~repro.workloads.trace.load_trace_csv`, not beside it.
"""

from __future__ import annotations

import math
import pathlib
import random
from dataclasses import dataclass
from typing import Callable, List

from ..errors import ConfigurationError
from ..units import check_positive
from .trace import TracePoint

#: A shape builder: (rng, day_length, step) -> demand percent per step.
Builder = Callable[[random.Random, float, float], List[float]]


def _clamp(value: float) -> float:
    return max(0.0, min(100.0, value))


def _steps(day_length: float, step: float) -> list[float]:
    return [index * step for index in range(int(day_length / step))]


def _ramp(x: float, start: float, end: float) -> float:
    """0→1 linearly over [start, end] of the day fraction."""
    if x <= start:
        return 0.0
    if x >= end:
        return 1.0
    return (x - start) / (end - start)


def _office_curve(x: float) -> float:
    """The 9-to-5 envelope in [0, 1]: ramps, plateau, lunch dip."""
    envelope = _ramp(x, 0.30, 0.38) * (1.0 - _ramp(x, 0.70, 0.80))
    lunch = max(0.0, 1.0 - abs(x - 0.5) / 0.04)
    return envelope * (1.0 - 0.3 * lunch)


def _diurnal_office(rng: random.Random, day_length: float, step: float) -> list[float]:
    out = []
    for t in _steps(day_length, step):
        x = t / day_length
        out.append(5.0 + 27.0 * _office_curve(x) + rng.gauss(0.0, 1.5))
    return out


def _weekend(rng: random.Random, day_length: float, step: float) -> list[float]:
    out = []
    for t in _steps(day_length, step):
        x = t / day_length
        bump = math.sin(math.pi * x) ** 2
        out.append(4.0 + 8.0 * bump + rng.gauss(0.0, 1.0))
    return out


def _flash_crowd(rng: random.Random, day_length: float, step: float) -> list[float]:
    onset = rng.uniform(0.25, 0.65)
    decay = day_length / 10.0
    out = []
    for t in _steps(day_length, step):
        x = t / day_length
        demand = 8.0 + 4.0 * math.sin(2.0 * math.pi * x - math.pi / 2.0)
        if x >= onset:
            demand += 55.0 * math.exp(-(t - onset * day_length) / decay)
        out.append(demand + rng.gauss(0.0, 2.0))
    return out


def _batch_overnight(rng: random.Random, day_length: float, step: float) -> list[float]:
    out = []
    for t in _steps(day_length, step):
        x = t / day_length
        if x < 0.20 or x >= 0.78:
            out.append(55.0 + rng.gauss(0.0, 3.0))
        else:
            out.append(3.0 + rng.gauss(0.0, 1.0))
    return out


def _noisy_neighbor(rng: random.Random, day_length: float, step: float) -> list[float]:
    out = []
    for _ in _steps(day_length, step):
        demand = 12.0 + rng.gauss(0.0, 3.0)
        if rng.random() < 0.20:
            demand += rng.uniform(15.0, 40.0)
        out.append(demand)
    return out


@dataclass(frozen=True)
class DayShape:
    """One catalog entry: a named, documented day generator."""

    name: str
    description: str
    build: Builder


#: The catalog, keyed by name, in documentation order.
DAYSHAPES: dict[str, DayShape] = {
    shape.name: shape
    for shape in (
        DayShape(
            "diurnal-office",
            "quiet nights, 9-to-5 plateau with a lunch dip",
            _diurnal_office,
        ),
        DayShape(
            "weekend",
            "gentle midday bump at a fraction of the weekday level",
            _weekend,
        ),
        DayShape(
            "flash-crowd",
            "light diurnal baseline plus one seeded viral spike",
            _flash_crowd,
        ),
        DayShape(
            "batch-overnight",
            "near-idle days, heavy sustained overnight processing",
            _batch_overnight,
        ),
        DayShape(
            "noisy-neighbor",
            "moderate base with frequent random bursts",
            _noisy_neighbor,
        ),
    )
}


def dayshape_names() -> tuple[str, ...]:
    """Catalog shape names, in documentation order."""
    return tuple(DAYSHAPES)


def require_dayshape(name: str) -> DayShape:
    """The catalog entry called *name*; unknown names list the choices."""
    try:
        return DAYSHAPES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown day shape {name!r}; use one of: {', '.join(DAYSHAPES)}"
        ) from None


def dayshape_points(
    name: str,
    rng: random.Random,
    *,
    day_length: float = 400.0,
    step: float = 5.0,
    scale: float = 1.0,
) -> list[TracePoint]:
    """One day of *name*-shaped trace points (clamped to [0, 100]).

    ``scale`` multiplies the shape's demand (an intensity knob: the same
    day at 0.5x or 2x traffic).  The list ends in a zero point at
    ``day_length`` so :class:`~repro.workloads.trace.TraceLoad` repeats it
    as whole days.
    """
    shape = require_dayshape(name)
    check_positive(day_length, "day_length")
    check_positive(step, "step")
    check_positive(scale, "scale")
    demands = shape.build(rng, day_length, step)
    points = [
        TracePoint(start=index * step, percent=_clamp(demand * scale))
        for index, demand in enumerate(demands)
    ]
    points.append(TracePoint(start=day_length, percent=0.0))
    return points


def dayshape_csv(
    name: str,
    path: str | pathlib.Path,
    *,
    seed: int = 0,
    day_length: float = 400.0,
    step: float = 5.0,
) -> pathlib.Path:
    """Materialise a shape as a headered utilisation CSV.

    The written file round-trips through
    :func:`~repro.workloads.trace.load_trace_csv`, so any consumer of
    ``WorkloadSpec.trace_file`` (or an external tool) can replay a catalog
    day without importing this module.
    """
    points = dayshape_points(
        name, random.Random(seed), day_length=day_length, step=step
    )
    path = pathlib.Path(path)
    lines = ["time,percent"]
    lines.extend(f"{point.start!r},{point.percent!r}" for point in points)
    path.write_text("\n".join(lines) + "\n")
    return path
