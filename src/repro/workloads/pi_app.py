"""pi-app: the paper's execution-time workload (§5.1).

"When we aim at measuring an execution time, we use an application which
computes an approximation of pi."  Here that is a fixed amount of work in
absolute seconds, queued at a start time; the execution time is measured
from the start until the vCPU drains the queue.

Used by the Fig. 1 compensation experiment, the Eq. 2/3 validation sweeps
and the Table 2 platform comparison.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..units import check_non_negative, check_positive
from .base import Workload


class PiApp(Workload):
    """A batch job of *work* absolute seconds, started at *start_at*.

    Attributes
    ----------
    started_at:
        Simulated time the work was queued (None before start).
    finished_at:
        Simulated time the queue drained (None while running).
    """

    def __init__(self, work: float, *, start_at: float = 0.0) -> None:
        super().__init__()
        self.work = check_positive(work, "work")
        self.start_at = check_non_negative(start_at, "start_at")
        self.started_at: float | None = None
        self.finished_at: float | None = None

    def bind(self, domain) -> None:
        super().bind(domain)
        domain.on_idle(self._on_idle)

    def start(self) -> None:
        delay = self.start_at - self.engine.now
        if delay < 0:
            raise WorkloadError(
                f"pi-app start_at={self.start_at} is in the past (now={self.engine.now})"
            )
        self.engine.schedule(delay, self._begin, label=f"pi-app.{self.domain.name}.begin")

    def _begin(self) -> None:
        self.started_at = self.engine.now
        self.domain.add_work(self.work)

    def _on_idle(self, now: float) -> None:
        if self.started_at is not None and self.finished_at is None:
            self.finished_at = now

    # -------------------------------------------------------------- results

    @property
    def done(self) -> bool:
        """True once the full work amount completed."""
        return self.finished_at is not None

    @property
    def execution_time(self) -> float:
        """Wall-clock seconds from start to completion.

        Raises until the job has finished — benchmarks must run the host
        long enough (a job at credit c and frequency ratio r needs about
        ``work / (c/100 * r)`` seconds).
        """
        if self.started_at is None or self.finished_at is None:
            raise WorkloadError(
                f"pi-app on {self.domain.name!r} has not finished "
                f"(started={self.started_at}, finished={self.finished_at})"
            )
        return self.finished_at - self.started_at
