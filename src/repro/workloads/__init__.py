"""Workloads (subsystem S7): the paper's two applications and their drivers.

* :class:`PiApp` — the fixed-work batch job used "when we aim at measuring
  an execution time" (§5.1);
* :class:`WebApp` — the Joomla-style service used "when we aim at measuring
  a CPU load", driven by an httperf-like open-loop injector with the paper's
  three-phase (inactive / active / inactive) profiles and the two active
  intensities: *exact* load (100 % of the VM's capacity, no more) and
  *thrashing* load (exceeding the VM's capacity) — §5.3;
* :class:`ConstantLoad` — a duty-cycle source (Dom0 housekeeping, tests);
* :class:`LoadProfile` — piecewise-constant request-rate schedules;
* :class:`HttperfInjector` — the rate generator (deterministic fluid by
  default, optional Poisson arrivals);
* the day-shape catalog (:mod:`~repro.workloads.dayshapes`) — named,
  seeded utilisation-day generators (``diurnal-office``, ``flash-crowd``,
  ``batch-overnight``, ``noisy-neighbor``, ``weekend``) for heterogeneous
  fleets.
"""

from .base import Workload
from .constant import ConstantLoad
from .dayshapes import (
    DAYSHAPES,
    dayshape_csv,
    dayshape_names,
    dayshape_points,
    DayShape,
)
from .latency import LatencyTracker
from .pi_app import PiApp
from .profiles import LoadProfile, Phase
from .injector import HttperfInjector
from .trace import load_trace_csv, SyntheticTrace, TraceLoad, TracePoint
from .web_app import WebApp, exact_rate, thrashing_rate

__all__ = [
    "DAYSHAPES",
    "DayShape",
    "dayshape_csv",
    "dayshape_names",
    "dayshape_points",
    "Workload",
    "ConstantLoad",
    "LatencyTracker",
    "PiApp",
    "LoadProfile",
    "Phase",
    "HttperfInjector",
    "SyntheticTrace",
    "TraceLoad",
    "TracePoint",
    "load_trace_csv",
    "WebApp",
    "exact_rate",
    "thrashing_rate",
]
