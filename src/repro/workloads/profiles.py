"""Piecewise-constant request-rate schedules.

The paper's execution profile (§5.3) gives every VM three phases —
inactive, active, inactive — where the active phase carries either an
*exact* or a *thrashing* request rate.  A :class:`LoadProfile` is the
general form: a sorted list of :class:`Phase` boundaries, each setting the
request rate from its start time onward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import WorkloadError
from ..units import check_non_negative


@dataclass(frozen=True, slots=True)
class Phase:
    """From time *start*, the injector sends *rate_rps* requests per second."""

    start: float
    rate_rps: float

    def __post_init__(self) -> None:
        check_non_negative(self.start, "start")
        check_non_negative(self.rate_rps, "rate_rps")


class LoadProfile:
    """A piecewise-constant rate schedule.

    >>> profile = LoadProfile([Phase(0, 0), Phase(50, 40), Phase(750, 0)])
    >>> profile.rate_at(100.0)
    40.0
    """

    def __init__(self, phases: Sequence[Phase]) -> None:
        if not phases:
            raise WorkloadError("a load profile needs at least one phase")
        ordered = sorted(phases, key=lambda phase: phase.start)
        starts = [phase.start for phase in ordered]
        if len(set(starts)) != len(starts):
            raise WorkloadError(f"duplicate phase starts: {starts}")
        self._phases: tuple[Phase, ...] = tuple(ordered)

    @property
    def phases(self) -> tuple[Phase, ...]:
        """Phases sorted by start time."""
        return self._phases

    def rate_at(self, time: float) -> float:
        """Request rate in effect at *time* (0 before the first phase)."""
        rate = 0.0
        for phase in self._phases:
            if time >= phase.start:
                rate = phase.rate_rps
            else:
                break
        return rate

    @property
    def end_of_activity(self) -> float:
        """Start of the final zero-rate tail (inf if the profile never stops)."""
        last = self._phases[-1]
        if last.rate_rps == 0.0:
            return last.start
        return float("inf")

    @classmethod
    def three_phase(cls, active_start: float, active_end: float, rate_rps: float) -> "LoadProfile":
        """The paper's inactive / active / inactive profile (§5.3)."""
        if active_end <= active_start:
            raise WorkloadError(
                f"active_end ({active_end}) must follow active_start ({active_start})"
            )
        phases = [Phase(active_start, rate_rps), Phase(active_end, 0.0)]
        if active_start > 0.0:
            phases.insert(0, Phase(0.0, 0.0))
        return cls(phases)

    @classmethod
    def windows(
        cls, active: Sequence[Sequence[float]], rate_rps: float
    ) -> "LoadProfile":
        """*rate_rps* over each (start, end) window, zero in between.

        The general form of :meth:`three_phase`: one window reproduces the
        paper's inactive / active / inactive profile exactly; several give
        intermittent activity (on/off duty cycles, staggered timelines).
        Windows must be in ascending order and must not overlap; adjacent
        windows (end == next start) merge into continuous activity.
        """
        if not active:
            raise WorkloadError("windows() needs at least one (start, end) window")
        phases: list[Phase] = []
        previous_end = None
        for window in active:
            start, end = float(window[0]), float(window[1])
            if end <= start:
                raise WorkloadError(f"window end ({end}) must follow start ({start})")
            if previous_end is not None and start < previous_end:
                raise WorkloadError(
                    f"windows overlap: one ends at {previous_end}, next starts at {start}"
                )
            if previous_end is not None and start == previous_end:
                phases.pop()  # merge: drop the zero phase between them
            phases.append(Phase(start, rate_rps))
            phases.append(Phase(end, 0.0))
            previous_end = end
        if phases[0].start > 0.0:
            phases.insert(0, Phase(0.0, 0.0))
        return cls(phases)

    @classmethod
    def constant(cls, rate_rps: float) -> "LoadProfile":
        """A single always-on phase."""
        return cls([Phase(0.0, rate_rps)])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"t>={phase.start:g}: {phase.rate_rps:g}rps" for phase in self._phases)
        return f"LoadProfile({parts})"
