"""Request-latency accounting for queued workloads.

The paper's introduction frames everything as QoS ("companies subscribe for
a quality of service and expect providers to fully meet it"), but the
evaluation reports loads and execution times.  This module adds the missing
QoS dimension: a FIFO latency tracker that converts a workload's drained
work back into per-request response times, so experiments can report what a
frequency-starved credit cap *feels like* to the customer's clients.

Model: requests enter a FIFO as (arrival time, work) chunks; the tracker is
periodically told how much work the vCPU completed and walks the FIFO,
recording ``completion - arrival`` for every fully drained chunk, weighted
by the chunk's request count.  Resolution is the polling period (50 ms by
default via the Web-app's injection timer) — far finer than the multi-second
latencies the experiments exhibit under starvation.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass

from ..errors import WorkloadError
from ..units import check_non_negative

#: Work below this is treated as fully drained (float fuzz guard).
_WORK_EPSILON = 1e-12


@dataclass
class _Chunk:
    """A batch of requests that arrived together."""

    arrival: float
    remaining_work: float
    requests: float


class LatencyTracker:
    """FIFO response-time accounting over fluid request batches."""

    def __init__(self) -> None:
        self._fifo: deque[_Chunk] = deque()
        #: Sorted ``(latency, weight)`` samples.  One list + C-level
        #: ``bisect.insort`` instead of parallel lists with two Python-level
        #: ``insert`` calls; ties sort by weight, which cannot change any
        #: query (tied entries share the latency value that queries return).
        self._samples: list[tuple[float, float]] = []
        self._total_weight = 0.0
        self._weighted_sum = 0.0
        self._max_latency = 0.0

    # -------------------------------------------------------------- ingest

    def on_arrival(self, now: float, work: float, requests: float) -> None:
        """Record a batch of *requests* arriving at *now* costing *work*."""
        if work <= 0.0 or requests <= 0.0:
            check_non_negative(work, "work")
            check_non_negative(requests, "requests")
            return
        self._fifo.append(_Chunk(arrival=now, remaining_work=work, requests=requests))

    def on_progress(self, now: float, work_done: float) -> None:
        """Drain *work_done* absolute seconds from the FIFO head.

        Chunks that fully drain record a response-time sample at *now*.
        """
        if work_done < 0.0:
            check_non_negative(work_done, "work_done")
        budget = work_done
        while budget > _WORK_EPSILON and self._fifo:
            head = self._fifo[0]
            if head.remaining_work <= budget + _WORK_EPSILON:
                budget -= head.remaining_work
                self._fifo.popleft()
                self._record(now - head.arrival, head.requests)
            else:
                head.remaining_work -= budget
                budget = 0.0

    def _record(self, latency: float, weight: float) -> None:
        latency = max(latency, 0.0)
        bisect.insort(self._samples, (latency, weight))
        self._total_weight += weight
        self._weighted_sum += latency * weight
        self._max_latency = max(self._max_latency, latency)

    # ------------------------------------------------------------- queries

    @property
    def completed_requests(self) -> float:
        """Requests with a recorded response time."""
        return self._total_weight

    @property
    def queued_requests(self) -> float:
        """Requests still (partially) in the FIFO."""
        return sum(chunk.requests for chunk in self._fifo)

    @property
    def mean_response_time(self) -> float:
        """Weighted mean response time in seconds."""
        if self._total_weight == 0.0:
            raise WorkloadError("no completed requests to summarise")
        return self._weighted_sum / self._total_weight

    @property
    def max_response_time(self) -> float:
        """Largest recorded response time."""
        if self._total_weight == 0.0:
            raise WorkloadError("no completed requests to summarise")
        return self._max_latency

    def percentile(self, p_percent: float) -> float:
        """Weighted percentile (``p_percent`` in [0, 100]) of response times."""
        if not 0.0 <= p_percent <= 100.0:
            raise WorkloadError(
                f"percentile must be within [0, 100], got {p_percent}"
            )
        if self._total_weight == 0.0:
            raise WorkloadError("no completed requests to summarise")
        target = self._total_weight * p_percent / 100.0
        cumulative = 0.0
        for latency, weight in self._samples:
            cumulative += weight
            if cumulative >= target:
                return latency
        return self._samples[-1][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyTracker(completed={self._total_weight:.0f}, "
            f"queued={self.queued_requests:.0f})"
        )
