"""Workload interface.

A workload is attached to exactly one domain
(:meth:`repro.hypervisor.Domain.attach_workload`) and pushes demand — in
absolute seconds — onto its vCPU via :meth:`Domain.add_work`.  The host
starts all attached workloads in :meth:`Host.start`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from ..errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hypervisor.domain import Domain
    from ..sim import Engine


class Workload(ABC):
    """Base class for demand generators."""

    def __init__(self) -> None:
        self._domain: "Domain | None" = None

    def bind(self, domain: "Domain") -> None:
        """Called by :meth:`Domain.attach_workload`."""
        if self._domain is not None:
            raise WorkloadError(
                f"workload already bound to {self._domain.name!r}; one domain per workload"
            )
        self._domain = domain

    @property
    def domain(self) -> "Domain":
        """The owning domain (raises before binding)."""
        if self._domain is None:
            raise WorkloadError("workload is not bound to a domain")
        return self._domain

    @property
    def engine(self) -> "Engine":
        """The host's simulation engine."""
        return self.domain.host.engine

    @abstractmethod
    def start(self) -> None:
        """Begin generating demand (called by :meth:`Host.start`)."""

    def stop(self) -> None:
        """Stop generating demand.  Default: nothing to stop."""
