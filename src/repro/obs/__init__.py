"""Observability: sim-time tracing, runtime metrics, wall-clock profiling.

Three layers, strictly separated by their relationship to determinism:

* :mod:`repro.obs.trace` — Chrome trace-event output keyed on **sim time**;
  deterministic, byte-identical per seed, safe inside the RPL8xx net;
* :mod:`repro.obs.metrics` — monotonic counters/gauges, mostly harvested
  from counters the subsystems already keep; equally deterministic;
* :mod:`repro.obs.profile` — the **only** module in the library allowed to
  read a wall clock, attached dynamically so the static determinism walk
  never sees it.

The hot paths consult :mod:`repro.obs.hooks` (two nullable module globals)
— with nothing installed the whole layer costs one ``is not None`` test
per instrumented site.
"""

from .hooks import (
    install_metrics,
    install_tracer,
    observed,
    uninstall_metrics,
    uninstall_tracer,
)
from .metrics import (
    MetricsRegistry,
    collect_cluster,
    collect_engine,
    collect_host,
    collect_outcome,
    collect_sweep,
)
from .profile import PhaseProfiler, profile_cluster, profile_scenario, wall_now
from .trace import TRACE_SCHEMA, Tracer, validate_trace_file, validate_trace_text

__all__ = [
    "MetricsRegistry",
    "PhaseProfiler",
    "TRACE_SCHEMA",
    "Tracer",
    "collect_cluster",
    "collect_engine",
    "collect_host",
    "collect_outcome",
    "collect_sweep",
    "install_metrics",
    "install_tracer",
    "observed",
    "profile_cluster",
    "profile_scenario",
    "uninstall_metrics",
    "uninstall_tracer",
    "validate_trace_file",
    "validate_trace_text",
    "wall_now",
]
