"""The runtime metrics registry: cheap counters/gauges, flat snapshots.

A :class:`MetricsRegistry` holds monotonic counters and point-in-time
gauges under dotted names (``engine.events_fired``, ``store.cache_hits``).
Two update styles keep the hot paths unpolluted:

* **live increments** (:meth:`~MetricsRegistry.inc`) from cold paths only —
  per-cell sweep completion, per-epoch orchestration — behind the usual
  ``hooks.METRICS is not None`` guard;
* **harvesting** (:func:`collect_host` / :func:`collect_cluster` /
  :func:`collect_sweep`) which folds counters the subsystems *already
  maintain* (``Engine.events_fired``, ``Host.preemptions``,
  ``SchedulerStats``, ``SweepRunner.cache_hits``...) into the registry
  after a run — zero added cost during the run.

Snapshots are flat ``{name: number}`` dicts (sorted by name) so they drop
straight into ``--metrics-out`` JSON files and ``BENCH_<rev>.json``
entries.  Nothing here reads a wall clock; wall-time profiling lives in
:mod:`repro.obs.profile`, outside the determinism net.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any


class MetricsRegistry:
    """Monotonic counters + gauges, snapshotable as one flat dict."""

    __slots__ = ("_counters", "_gauges")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # -------------------------------------------------------------- updates

    def inc(self, name: str, amount: float = 1) -> None:
        """Add *amount* to counter *name* (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        self._gauges[name] = value

    def record_max(self, name: str, value: float) -> None:
        """Raise gauge *name* to *value* if it is a new high-water mark."""
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    def counter(self, name: str) -> float:
        """Current value of counter *name* (0 when never incremented)."""
        return self._counters.get(name, 0)

    # ------------------------------------------------------------ snapshots

    def snapshot(self) -> dict[str, float]:
        """All counters and gauges as one flat name-sorted dict."""
        merged = dict(self._counters)
        merged.update(self._gauges)
        return {name: merged[name] for name in sorted(merged)}

    def to_json(self) -> str:
        """The snapshot as canonical JSON (sorted keys, trailing newline)."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write :meth:`to_json` to *path*; returns the path written."""
        target = pathlib.Path(path)
        target.write_text(self.to_json())
        return target

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self)} metrics)"


# ------------------------------------------------------------- harvesters


def collect_engine(registry: MetricsRegistry, engine: Any) -> None:
    """Fold an :class:`~repro.sim.engine.Engine`'s own counters in."""
    registry.inc("engine.events_fired", engine.events_fired)
    registry.record_max("engine.heap_peak", engine.heap_peak)
    registry.inc("engine.free_list_reuse", engine.free_list_reuse)
    registry.gauge("engine.pending_at_end", engine.pending_count)


def collect_host(registry: MetricsRegistry, host: Any) -> None:
    """Fold a finished :class:`~repro.hypervisor.host.Host`'s counters in.

    Covers the engine, the dispatch loop, the scheduler's stats, cpufreq,
    the recorder, and workload skip-ahead retirement — the single-host
    metric catalogue ``docs/observability.md`` documents.
    """
    collect_engine(registry, host.engine)
    registry.inc("host.preemptions", host.preemptions)
    stats = host.scheduler.stats
    registry.inc("sched.decisions", stats.decisions)
    registry.inc("sched.idle_picks", stats.idle_picks)
    registry.inc("sched.charged_s", stats.charged_seconds)
    registry.inc("cpufreq.requests", host.cpufreq.requests)
    registry.inc("cpufreq.transitions", host.processor.transitions)
    registry.gauge("host.energy_joules", host.processor.energy_joules)
    recorder = host.recorder
    registry.gauge("telemetry.series", len(recorder))
    registry.inc(
        "telemetry.samples",
        sum(len(recorder.series(name)) for name in recorder.names()),
    )
    timers_retired = 0
    injectors = 0
    for domain in host.domains:
        for workload in domain.workloads:
            injector = getattr(workload, "_injector", None)
            if injector is None:
                continue
            injectors += 1
            if injector.retired:
                timers_retired += 1
    if injectors:
        registry.inc("workload.injectors", injectors)
        registry.inc("workload.skip_ahead_retired", timers_retired)
    controller = getattr(host, "qos_controller", None)
    if controller is not None:
        _fold_qos_stats(registry, controller.stats)


def _fold_qos_stats(registry: MetricsRegistry, stats: Any) -> None:
    """Fold a :class:`~repro.qos.controllers.QosStats` ledger in.

    Harvest-only on purpose: the controller maintains these itself, so the
    control path never touches the registry and observed runs stay
    byte-identical to unobserved ones.
    """
    registry.inc("qos.decisions", stats.decisions)
    registry.inc("qos.steps_down", stats.steps_down)
    registry.inc("qos.steps_up", stats.steps_up)
    registry.inc("qos.lc_sla_saves", stats.lc_sla_saves)
    registry.gauge("qos.quota_level", stats.quota_level)
    registry.record_max("qos.contention_peak", stats.contention_peak)
    registry.gauge("qos.time_throttled_s", stats.time_throttled_s)
    for level in sorted(stats.time_at_level):
        registry.gauge(f"qos.time_at_level_{level}", stats.time_at_level[level])


def collect_cluster(registry: MetricsRegistry, sim: Any) -> None:
    """Fold a finished :class:`~repro.cluster.orchestrator.Orchestrator` in."""
    registry.inc("cluster.epochs", len(sim.stats))
    registry.inc("cluster.migrations", sim.total_migrations)
    registry.inc("cluster.sla_violation_epochs", sim.sla_violations)
    registry.gauge("cluster.energy_joules", sim.fleet_energy_joules)
    if sim.stats:
        registry.record_max("cluster.peak_power_w", sim.peak_power_w)
        registry.gauge("cluster.machines_on_mean", sim.mean_machines_on)
        registry.gauge("cluster.sla_mean", sim.mean_sla_fraction)
    fleet_qos = getattr(sim, "fleet_qos", None)
    if fleet_qos is not None:
        _fold_qos_stats(registry, fleet_qos.stats)
    residency = getattr(sim, "cstate_residency", None)
    if residency is not None:
        # Empty for homogeneous fleets (no C-state ladders), so legacy
        # metrics snapshots gain no keys.
        for name, seconds in sorted(residency().items()):
            registry.gauge(f"cstate.{name}_s", seconds)


def collect_sweep(registry: MetricsRegistry, runner: Any) -> None:
    """Fold a finished :class:`~repro.sweep.runner.SweepRunner` in."""
    registry.inc("store.cache_hits", runner.cache_hits)
    registry.inc("store.computed", runner.computed)
    registry.inc("sweep.cells", runner.cache_hits + runner.computed)
    registry.gauge("sweep.workers", runner.workers)
    # The pool never holds more live tasks than it has computed cells.
    registry.gauge("sweep.pool_occupancy", min(runner.workers, runner.computed))


def collect_outcome(registry: MetricsRegistry, outcome: Any) -> None:
    """Fold any run outcome in, dispatching on its shape.

    Accepts a :class:`~repro.experiments.scenario.ScenarioResult`, a bare
    :class:`~repro.hypervisor.host.Host`, or an
    :class:`~repro.cluster.orchestrator.Orchestrator` — the three things
    ``repro run`` can produce.
    """
    host = getattr(outcome, "host", None)
    if host is not None:
        collect_host(registry, host)
    elif hasattr(outcome, "scheduler"):
        collect_host(registry, outcome)
    elif hasattr(outcome, "machines"):
        collect_cluster(registry, outcome)
