"""Sim-time tracing in Chrome trace-event format (Perfetto-loadable).

A :class:`Tracer` collects trace events keyed on **simulated** time: every
timestamp is ``sim_seconds * 1e6`` microseconds, never a wall clock, so the
serialized trace is a pure function of (scenario spec, seed) and two runs of
the same preset produce byte-identical JSON.  Load the output at
https://ui.perfetto.dev or ``chrome://tracing``.

Event vocabulary (``cat`` / ``ph``):

* ``engine`` — one instant (``i``) per dispatched event, named by its label;
* ``sched`` — ``X`` (complete) spans per executed slice on the vCPU's own
  track, instants for pick/idle decisions and preemptions;
* ``credit`` — instants for cap-park and accounting-reset events;
* ``cpufreq`` — a ``C`` (counter) track of the P-state plus one instant per
  transition;
* ``cluster`` — ``X`` spans per orchestration epoch, instants per migration,
  and a fleet-power counter track;
* ``qos`` — a contention-score counter track (raw + windowed samples) plus
  one instant per controller decision (``throttle``/``restore``) on the
  ``qos.decisions`` track.

``docs/observability.md`` is the prose catalogue of the schema.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

#: Schema marker embedded in the trace's metadata (otherData).
TRACE_SCHEMA = "repro-trace/1"

#: Keys every Chrome trace event must carry.
_REQUIRED_EVENT_KEYS = frozenset({"name", "cat", "ph", "ts", "pid", "tid"})

#: Phases the writer emits (validation rejects anything else).
_KNOWN_PHASES = frozenset({"X", "i", "C", "M"})

#: The single simulated process every track lives under.
_PID = 1


class Tracer:
    """A deterministic sim-time trace-event collector.

    Parameters
    ----------
    categories:
        Iterable of category names to record (``engine``, ``sched``,
        ``credit``, ``cpufreq``, ``cluster``, ``qos``).  ``None`` records
        everything.
        The dense ``engine`` category dominates trace size; pass
        ``categories=("sched", "cpufreq")`` for slim scheduling traces.
    """

    __slots__ = ("events", "_wanted", "_tids", "_dropped")

    def __init__(self, categories: tuple[str, ...] | list[str] | None = None) -> None:
        self.events: list[dict[str, Any]] = []
        self._wanted: frozenset[str] | None = (
            frozenset(categories) if categories is not None else None
        )
        # Track ids are handed out in first-use order; sim determinism makes
        # the assignment (and hence the serialized ids) reproducible.
        self._tids: dict[str, int] = {}
        self._dropped = 0

    # ------------------------------------------------------------- plumbing

    def wants(self, category: str) -> bool:
        """True when *category* is being recorded."""
        return self._wanted is None or category in self._wanted

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
            self.events.append(
                {
                    "name": "thread_name",
                    "cat": "__metadata",
                    "ph": "M",
                    "ts": 0,
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    # ------------------------------------------------------------ raw emits

    def instant(
        self,
        category: str,
        name: str,
        time_s: float,
        track: str,
        args: dict[str, Any] | None = None,
    ) -> None:
        """An instant (``ph: i``) event at sim time *time_s* on *track*."""
        if not self.wants(category):
            return
        event: dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "i",
            "ts": time_s * 1e6,
            "pid": _PID,
            "tid": self._tid(track),
            "s": "t",
        }
        if args is not None:
            event["args"] = args
        self.events.append(event)

    def complete(
        self,
        category: str,
        name: str,
        start_s: float,
        dur_s: float,
        track: str,
        args: dict[str, Any] | None = None,
    ) -> None:
        """A complete span (``ph: X``) of *dur_s* starting at *start_s*."""
        if not self.wants(category):
            return
        event: dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": start_s * 1e6,
            "dur": dur_s * 1e6,
            "pid": _PID,
            "tid": self._tid(track),
        }
        if args is not None:
            event["args"] = args
        self.events.append(event)

    def counter(
        self, category: str, name: str, time_s: float, values: dict[str, float]
    ) -> None:
        """A counter sample (``ph: C``); *values* maps series name -> value."""
        if not self.wants(category):
            return
        self.events.append(
            {
                "name": name,
                "cat": category,
                "ph": "C",
                "ts": time_s * 1e6,
                "pid": _PID,
                "tid": self._tid(name),
                "args": values,
            }
        )

    # ----------------------------------------------------- domain emits
    #
    # One method per instrumented site keeps call sites one line and makes
    # the emit path a named node in the lint call graph: a wall-clock read
    # added to any of these is reachable from Engine.run_until and the
    # scheduler hooks, so RPL801 reports it (tests/lint/test_meta.py proves
    # this on a planted copy).

    def engine_event(self, time_s: float, label: str) -> None:
        """One dispatched engine event (dense; gate with ``categories``)."""
        self.instant("engine", label or "event", time_s, "engine")

    def sched_pick(self, time_s: float, picked: str | None, slice_s: float) -> None:
        """A ``pick_next`` decision: *picked* is the vCPU name or None (idle)."""
        if picked is None:
            self.instant("sched", "idle", time_s, "sched.decisions")
        else:
            self.instant(
                "sched",
                f"pick {picked}",
                time_s,
                "sched.decisions",
                args={"vcpu": picked, "slice_s": slice_s},
            )

    def sched_slice(self, vcpu: str, start_s: float, dur_s: float) -> None:
        """An executed slice on *vcpu*'s own track."""
        self.complete("sched", vcpu, start_s, dur_s, f"vcpu {vcpu}")

    def sched_preempt(self, time_s: float, vcpu: str, reason: str) -> None:
        """A slice ended early (*reason*: ``wake``/``tick``/``dvfs``)."""
        self.instant(
            "sched",
            f"preempt {vcpu}",
            time_s,
            "sched.decisions",
            args={"vcpu": vcpu, "reason": reason},
        )

    def credit_event(self, time_s: float, kind: str, vcpu: str) -> None:
        """A credit-scheduler bookkeeping event (``park`` / ``reset``)."""
        self.instant("credit", f"{kind} {vcpu}", time_s, "credit", args={"vcpu": vcpu})

    def pstate(self, time_s: float, freq_mhz: int) -> None:
        """A completed P-state transition plus a counter sample."""
        self.instant(
            "cpufreq",
            f"{freq_mhz} MHz",
            time_s,
            "cpufreq.transitions",
            args={"freq_mhz": freq_mhz},
        )
        self.counter("cpufreq", "freq_mhz", time_s, {"freq_mhz": float(freq_mhz)})

    def governor_decide(
        self,
        time_s: float,
        governor: str,
        load_percent: float,
        target_mhz: int | None,
    ) -> None:
        """A sampled governor decision (*target_mhz* ``None`` = keep current)."""
        self.instant(
            "cpufreq",
            f"{governor} decide",
            time_s,
            "cpufreq.governor",
            args={"load_percent": load_percent, "target_mhz": target_mhz},
        )

    def epoch(
        self, start_s: float, dur_s: float, index: int, args: dict[str, Any]
    ) -> None:
        """One orchestration epoch as a span on the cluster track."""
        self.complete("cluster", f"epoch {index}", start_s, dur_s, "cluster.epochs", args=args)
        power_w = args.get("power_w")
        if power_w is not None:
            self.counter("cluster", "fleet_power_w", start_s, {"power_w": power_w})

    def migration(self, time_s: float, vm: str, source: str, dest: str) -> None:
        """One executed live migration."""
        self.instant(
            "cluster",
            f"migrate {vm}",
            time_s,
            "cluster.migrations",
            args={"vm": vm, "source": source, "dest": dest},
        )

    def domain_freq(
        self,
        time_s: float,
        machine: str,
        domain: str,
        freq_mhz: int,
        power_w: float,
    ) -> None:
        """One frequency-domain sample: its own counter track per domain.

        Heterogeneous machines emit one track per (machine, domain) pair —
        ``domain.m000/little`` next to ``domain.m000/big`` — so Perfetto
        shows the clusters' P-states diverging under the same epoch spans.
        """
        self.counter(
            "cluster",
            f"domain.{machine}/{domain}",
            time_s,
            {"freq_mhz": float(freq_mhz), "power_w": power_w},
        )

    def qos_score(self, time_s: float, raw: float, windowed: float) -> None:
        """One contention-monitor sample (raw and window-mean scores)."""
        self.counter(
            "qos", "contention", time_s, {"raw": raw, "windowed": windowed}
        )

    def qos_decision(
        self,
        time_s: float,
        controller: str,
        action: str,
        scope: str,
        level: int,
        fraction: float,
        score: float,
    ) -> None:
        """One QoS controller actuation (*action*: ``throttle``/``restore``)."""
        self.instant(
            "qos",
            f"{controller} {action}",
            time_s,
            "qos.decisions",
            args={
                "controller": controller,
                "action": action,
                "scope": scope,
                "level": level,
                "fraction": fraction,
                "score": score,
            },
        )

    # ----------------------------------------------------------- serialise

    def to_json(self) -> str:
        """The canonical Chrome trace JSON (sorted keys, fixed separators).

        Canonical serialization is what turns per-seed determinism into
        *byte* identity: two runs that emit the same events serialize to
        the same bytes.
        """
        document = {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "clock": "sim"},
        }
        return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write :meth:`to_json` to *path*; returns the path written."""
        target = pathlib.Path(path)
        target.write_text(self.to_json())
        return target


# ------------------------------------------------------------- validation


def validate_trace_text(text: str) -> list[str]:
    """Problems with *text* as a Chrome trace-event document ([] = valid).

    Checks the structural contract Perfetto's legacy JSON importer relies
    on: a ``traceEvents`` list whose entries carry name/cat/ph/ts/pid/tid,
    ``X`` events a ``dur``, and numeric non-negative timestamps.  Used by
    the test suite and the CI observability smoke step.
    """
    problems: list[str] = []
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        return [f"not valid JSON: {error}"]
    if not isinstance(document, dict):
        return ["top level must be an object with a traceEvents list"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = sorted(_REQUIRED_EVENT_KEYS - set(event))
        if missing:
            problems.append(f"{where}: missing key(s) {', '.join(missing)}")
            continue
        phase = event["ph"]
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: X event needs a numeric dur")
        if phase == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: C event needs an args mapping")
    return problems


def validate_trace_file(path: str | pathlib.Path) -> None:
    """Raise :class:`~repro.errors.TelemetryError` naming every problem."""
    from ..errors import TelemetryError

    problems = validate_trace_text(pathlib.Path(path).read_text())
    if problems:
        raise TelemetryError(
            f"{path} is not a valid Chrome trace: " + "; ".join(problems[:10])
        )
