"""Opt-in wall-clock phase profiling (the one sanctioned wall-clock module).

Everything else under ``src/repro/`` is banned from reading a wall clock
(RPL101, and transitively from the hot loop by RPL801).  This module is the
single sanctioned exception — ``WALL_CLOCK_SANCTIONED`` in
:mod:`repro.lint.rules` names it — because a profiler's whole job is to
read wall time, and it must never influence simulation results:

* nothing in the library imports this module; only ``repro profile`` and
  the bench harness reach for it;
* it attaches by **rebinding instance attributes** (``setattr`` on the
  scheduler/governor/host, reassigning ``PeriodicTimer._callback`` slots),
  which the static RPL8xx call-graph walk cannot see — the determinism
  net stays intact for every un-profiled run;
* wrapped calls return their wrapped function's value untouched, so a
  profiled run computes the same results as a plain one (the profiled run
  is slower; that is the only difference).

Self-time accounting uses an explicit phase stack: each wrapper measures
its own elapsed wall time, subtracts the time its callees (also wrapped)
accumulated, and credits the remainder to its phase — so "scheduler" time
excludes the "accounting" work the scheduler triggered, and the table
``repro profile`` prints sums to (roughly) the run's wall clock.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.orchestrator import Orchestrator
    from ..hypervisor.host import Host


def wall_now() -> float:
    """The wall clock (``time.perf_counter``), for rate displays and benches.

    Call sites outside this module must go through this function: RPL101
    bans the textual ``time.perf_counter`` everywhere else in the library,
    and keeping every wall-clock read behind one name keeps the sanction
    auditable.
    """
    return time.perf_counter()


class PhaseProfiler:
    """Accumulates self-time per named phase via attach-time wrappers."""

    def __init__(self) -> None:
        self.self_s: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        #: One frame per in-flight wrapped call: [phase, child_elapsed_s].
        self._stack: list[list[Any]] = []
        self._run_wall_s = 0.0

    # ------------------------------------------------------------- wrapping

    def wrap_phase(self, phase: str, func: Callable[..., Any]) -> Callable[..., Any]:
        """A wrapper around *func* crediting its self-time to *phase*."""
        stack = self._stack
        perf = time.perf_counter

        def _timed(*args: Any, **kwargs: Any) -> Any:
            frame = [phase, 0.0]
            stack.append(frame)
            began = perf()
            try:
                return func(*args, **kwargs)
            finally:
                elapsed = perf() - began
                stack.pop()
                self.self_s[phase] = (
                    self.self_s.get(phase, 0.0) + elapsed - frame[1]
                )
                self.calls[phase] = self.calls.get(phase, 0) + 1
                if stack:
                    stack[-1][1] += elapsed

        return _timed

    def _wrap_timer(self, timer: Any, phase: str) -> None:
        """Reassign a :class:`~repro.sim.timers.PeriodicTimer` callback."""
        if timer is not None:
            timer._callback = self.wrap_phase(phase, timer._callback)

    # ------------------------------------------------------------ attaching

    def attach_host(self, host: "Host") -> None:
        """Instrument a started :class:`~repro.hypervisor.host.Host`.

        Phases: ``scheduler`` (every scheduler entry point), ``governor``
        (policy decisions), ``cpufreq`` (sampling + P-state application),
        ``accounting`` (lazy book folding), ``dispatch`` (the host's slice
        machinery), ``telemetry`` (load-monitor sampling), ``workload``
        (demand generation timers).  Call after ``host.start()`` so the
        workload timers exist; the engine looks timer callbacks and bound
        methods up at fire time, so rebinding here takes effect for the
        whole subsequent run.
        """
        scheduler = host.scheduler
        for name in (
            "pick_next",
            "slice_for",
            "charge",
            "wake",
            "sleep",
            "put_back",
            "tick",
            "should_preempt",
            "set_cap",
        ):
            setattr(scheduler, name, self.wrap_phase("scheduler", getattr(scheduler, name)))
        governor = host.cpufreq.governor
        if governor is not None:
            governor.decide = self.wrap_phase("governor", governor.decide)
        cpufreq = host.cpufreq
        cpufreq.set_speed = self.wrap_phase("cpufreq", cpufreq.set_speed)
        self._wrap_timer(cpufreq._timer, "cpufreq")
        host.sync_accounting = self.wrap_phase("accounting", host.sync_accounting)
        host._begin_dispatch = self.wrap_phase("dispatch", host._begin_dispatch)
        host._end_current_slice = self.wrap_phase("dispatch", host._end_current_slice)
        self._wrap_timer(host._monitor._timer, "telemetry")
        for domain in host.domains:
            for workload in domain.workloads:
                for attr in ("_timer", "_progress_timer"):
                    self._wrap_timer(getattr(workload, attr, None), "workload")
                injector = getattr(workload, "_injector", None)
                if injector is not None:
                    self._wrap_timer(injector._timer, "workload")

    def attach_orchestrator(self, sim: "Orchestrator") -> None:
        """Instrument an :class:`~repro.cluster.orchestrator.Orchestrator`.

        Phases: ``planning`` (policy consultation), ``migration``
        (assignment application), ``serving`` (per-machine epoch serving),
        ``epoch`` (the remaining per-epoch bookkeeping).
        """
        from ..cluster.policies import OrchestrationPolicy

        if isinstance(sim.policy, OrchestrationPolicy):
            sim.policy.plan = self.wrap_phase("planning", sim.policy.plan)
        else:
            sim.policy = self.wrap_phase("planning", sim.policy)
        sim._apply_assignment = self.wrap_phase("migration", sim._apply_assignment)
        for machine in sim.machines:
            machine.run_epoch = self.wrap_phase("serving", machine.run_epoch)
        sim._run_one_epoch = self.wrap_phase("epoch", sim._run_one_epoch)

    # -------------------------------------------------------------- results

    def note_run_wall(self, wall_s: float) -> None:
        """Record the whole run's wall time (the table's ``other`` row)."""
        self._run_wall_s = wall_s

    def phase_rows(self) -> list[dict[str, Any]]:
        """Per-phase rows sorted by self-time (descending).

        Each row: ``{"phase", "self_s", "calls", "share"}`` where ``share``
        is the fraction of accounted self-time.  When a whole-run wall time
        was noted, an ``other`` row holds the unattributed remainder (engine
        heap machinery, event plumbing, interpreter overhead).
        """
        accounted = sum(self.self_s.values())
        rows = [
            {"phase": phase, "self_s": spent, "calls": self.calls.get(phase, 0)}
            for phase, spent in self.self_s.items()
        ]
        if self._run_wall_s > accounted:
            rows.append(
                {
                    "phase": "other",
                    "self_s": self._run_wall_s - accounted,
                    "calls": 0,
                }
            )
        total = max(self._run_wall_s, accounted)
        for row in rows:
            row["share"] = row["self_s"] / total if total > 0 else 0.0
        rows.sort(key=lambda row: (-row["self_s"], row["phase"]))
        return rows

    def render_table(self) -> str:
        """The sorted self-time table ``repro profile`` prints."""
        rows = self.phase_rows()
        lines = [f"{'phase':<12} {'self_s':>9} {'share':>7} {'calls':>10}"]
        lines.append("-" * len(lines[0]))
        for row in rows:
            lines.append(
                f"{row['phase']:<12} {row['self_s']:>9.3f} "
                f"{row['share']:>6.1%} {row['calls']:>10}"
            )
        if self._run_wall_s > 0:
            lines.append("-" * len(lines[0]))
            lines.append(f"{'run wall':<12} {self._run_wall_s:>9.3f}")
        return "\n".join(lines)


# ----------------------------------------------------------------- drivers


def profile_scenario(config: Any) -> tuple[Any, PhaseProfiler]:
    """Run a scenario with the profiler attached; (result, profiler).

    Mirrors :func:`repro.experiments.scenario.run_scenario` exactly —
    build, start, apply policy limits, run to the configured duration
    (stepping when ``stop_when_batch_done``) — with the profiler attached
    between start and run.
    """
    from ..experiments.scenario import (
        ScenarioResult,
        _batch_workloads,
        build_scenario,
    )

    profiler = PhaseProfiler()
    host = build_scenario(config)
    host.start()
    if config.cpufreq_min_mhz is not None or config.cpufreq_max_mhz is not None:
        host.cpufreq.set_policy_limits(
            min_mhz=config.cpufreq_min_mhz, max_mhz=config.cpufreq_max_mhz
        )
        if config.cpufreq_max_mhz is not None:
            host.cpufreq.set_speed(host.processor.state.freq_mhz)
    profiler.attach_host(host)
    began = wall_now()
    batch = _batch_workloads(host) if config.stop_when_batch_done else []
    if batch:
        step = min(200.0, config.duration)
        while host.now < config.duration and not all(pi.done for pi in batch):
            host.run(until=min(config.duration, host.now + step))
    else:
        host.run(until=config.duration)
    profiler.note_run_wall(wall_now() - began)
    return ScenarioResult(config=config, host=host), profiler


def profile_cluster(config: Any) -> tuple["Orchestrator", PhaseProfiler]:
    """Run a cluster scenario with the profiler attached; (sim, profiler)."""
    from ..cluster.scenario import build_cluster

    profiler = PhaseProfiler()
    sim = build_cluster(config)
    profiler.attach_orchestrator(sim)
    began = wall_now()
    sim.run(config.duration)
    profiler.note_run_wall(wall_now() - began)
    return sim, profiler
