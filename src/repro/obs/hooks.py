"""Module-level observability hook points.

The instrumented hot paths (engine dispatch, host slice machinery, cpufreq,
credit accounting, the orchestrator epoch loop) consult exactly two module
globals here — :data:`TRACER` and :data:`METRICS` — guarded by an
``is not None`` check.  With nothing installed (the default, and the state
every library import leaves behind) the hooks cost one load + one jump per
guarded site, which is why the ``tracing-off`` bench can hold
``stress-fleet-cold`` inside the existing regression envelope.

When a :class:`~repro.obs.trace.Tracer` *is* installed, every emission is
keyed on **sim time** — the tracer never reads a wall clock, so traces are
byte-identical per seed and the RPL8xx reachability walk stays clean even
though the emit methods are reachable from the engine's hot loop.

Installation is process-global on purpose: a run is observed or it is not,
and forked sweep workers inherit whatever the parent installed before the
pool forked.  Use :func:`observed` to scope installation to one run.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import MetricsRegistry
    from .trace import Tracer

#: The installed tracer (None = tracing disabled; the zero-overhead state).
TRACER: "Tracer | None" = None

#: The installed metrics registry (None = no live counter updates).
METRICS: "MetricsRegistry | None" = None


def install_tracer(tracer: "Tracer | None") -> "Tracer | None":
    """Install *tracer* as the process-global tracer; returns the previous one."""
    global TRACER
    previous = TRACER
    TRACER = tracer
    return previous


def uninstall_tracer() -> "Tracer | None":
    """Disable tracing; returns the tracer that was installed (if any)."""
    return install_tracer(None)


def install_metrics(registry: "MetricsRegistry | None") -> "MetricsRegistry | None":
    """Install *registry* as the process-global registry; returns the previous one."""
    global METRICS
    previous = METRICS
    METRICS = registry
    return previous


def uninstall_metrics() -> "MetricsRegistry | None":
    """Disable live metrics; returns the registry that was installed (if any)."""
    return install_metrics(None)


@contextlib.contextmanager
def observed(
    tracer: "Tracer | None" = None, metrics: "MetricsRegistry | None" = None
) -> Iterator[None]:
    """Install hooks for the duration of a ``with`` block, then restore.

    The restore happens even when the observed run raises, so a failing
    traced run never leaks a tracer into later (supposedly cold) runs.
    """
    previous_tracer = install_tracer(tracer) if tracer is not None else TRACER
    previous_metrics = install_metrics(metrics) if metrics is not None else METRICS
    try:
        yield
    finally:
        if tracer is not None:
            install_tracer(previous_tracer)
        if metrics is not None:
            install_metrics(previous_metrics)
