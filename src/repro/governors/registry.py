"""Governor factory by name, for experiment configs and the public API."""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from .base import Governor
from .conservative import ConservativeGovernor
from .ondemand import OndemandGovernor
from .performance import PerformanceGovernor
from .powersave import PowersaveGovernor
from .stable import StableGovernor
from .userspace import UserspaceGovernor

_FACTORIES: dict[str, Callable[..., Governor]] = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "userspace": UserspaceGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "stable": StableGovernor,
}

#: Names accepted by :func:`make_governor` (and ``Host(governor=...)``).
GOVERNOR_NAMES: tuple[str, ...] = tuple(sorted(_FACTORIES))


def make_governor(name: str, **kwargs) -> Governor:
    """Instantiate a governor by its registry *name*.

    Keyword arguments are forwarded to the governor constructor, so callers
    can tune thresholds: ``make_governor("ondemand", up_threshold=70)``.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown governor {name!r}; choose one of {', '.join(GOVERNOR_NAMES)}"
        ) from None
    return factory(**kwargs)
