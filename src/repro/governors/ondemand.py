"""The stock ``ondemand`` governor — the aggressive policy of Fig. 3.

Per the paper's description (§2.2, citing Pallipadi & Starikovskiy): jump to
the highest frequency when load is high, drop to the lowest level when CPU
utilisation falls below 20 %, and otherwise pick the cheapest frequency that
keeps utilisation under the up-threshold.

The instability the paper observes ("quite aggressive and unstable", §5.4)
needs no artificial noise here: with a 100 ms sampling window over a CPU that
is time-sliced in 30 ms quanta, the measured load is quantised (a window sees
0, 1, 2 or 3 slices of a capped VM), so successive samples straddle the
thresholds and the governor bounces between P-states.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import check_percent, check_positive
from .base import Governor


class OndemandGovernor(Governor):
    """Linux-style ondemand: threshold jumps with no history (§2.2, Fig. 3).

    Parameters
    ----------
    up_threshold:
        Nominal load (%) above which the governor jumps straight to the
        maximum frequency.  Linux default is 80.
    down_threshold:
        Nominal load (%) below which the governor drops straight to the
        minimum frequency (the paper's "less than 20 %").
    sampling_period:
        Seconds between load samples.  The 10 ms default matches the
        Linux/Xen ondemand sampling rate of the paper's era and sits under
        the 30 ms scheduling quantum, so load estimates are slice-quantised
        (a window containing one whole burst reads ~100 %, the next ~0 %) —
        the mechanism behind Fig. 3's oscillations.
    sampling_down_factor:
        Linux's anti-flap tunable: after a jump to the maximum frequency,
        skip this many - 1 sampling periods before considering a decrease
        (1 = re-evaluate immediately, the stock default of the paper's era
        — and the reason Fig. 3 flaps).
    """

    name = "ondemand"

    def __init__(
        self,
        *,
        up_threshold: float = 80.0,
        down_threshold: float = 20.0,
        sampling_period: float = 0.01,
        sampling_down_factor: int = 1,
    ) -> None:
        super().__init__()
        check_percent(up_threshold, "up_threshold", allow_zero=False)
        check_percent(down_threshold, "down_threshold")
        if down_threshold >= up_threshold:
            raise ConfigurationError(
                f"down_threshold ({down_threshold}) must be below up_threshold ({up_threshold})"
            )
        if sampling_down_factor < 1:
            raise ConfigurationError(
                f"sampling_down_factor must be >= 1, got {sampling_down_factor}"
            )
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.sampling_period = check_positive(sampling_period, "sampling_period")
        self.sampling_down_factor = sampling_down_factor
        self._hold_samples = 0

    def decide(self, load_percent: float, now: float) -> int | None:
        table = self.table
        if load_percent >= self.up_threshold:
            self._hold_samples = self.sampling_down_factor - 1
            return table.max_state.freq_mhz
        if self._hold_samples > 0:
            self._hold_samples -= 1
            return None
        if load_percent < self.down_threshold:
            return table.min_state.freq_mhz
        # Mid-band: cheapest frequency that would keep nominal utilisation
        # under the up-threshold for the demand just measured.  Like Linux's
        # `target = cur * load / up_threshold`, expressed through capacities.
        absolute = self.absolute_load_percent(load_percent)
        required = absolute * 100.0 / self.up_threshold
        return table.lowest_absorbing(required).freq_mhz
