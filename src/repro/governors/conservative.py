"""The ``conservative`` governor: one P-state step per decision (§2.2)."""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import check_percent, check_positive
from .base import Governor


class ConservativeGovernor(Governor):
    """Step the frequency up or down one level at a time.

    Per the paper: "decreases or increases frequency by one level through a
    range of values supported by the hardware, according to the CPU load."
    """

    name = "conservative"

    def __init__(
        self,
        *,
        up_threshold: float = 80.0,
        down_threshold: float = 20.0,
        sampling_period: float = 0.1,
    ) -> None:
        super().__init__()
        check_percent(up_threshold, "up_threshold", allow_zero=False)
        check_percent(down_threshold, "down_threshold")
        if down_threshold >= up_threshold:
            raise ConfigurationError(
                f"down_threshold ({down_threshold}) must be below up_threshold ({up_threshold})"
            )
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self.sampling_period = check_positive(sampling_period, "sampling_period")

    def decide(self, load_percent: float, now: float) -> int | None:
        current = self.cpufreq.processor.frequency_mhz
        if load_percent >= self.up_threshold:
            return self.table.step_up(current).freq_mhz
        if load_percent < self.down_threshold:
            return self.table.step_down(current).freq_mhz
        return None
