"""DVFS governors (subsystem S3).

All five stock Linux/Xen governors from §2.2 of the paper plus the authors'
own stabilised ondemand variant from §5.4:

* :class:`PerformanceGovernor` — pin the maximum frequency;
* :class:`PowersaveGovernor` — pin the minimum frequency;
* :class:`UserspaceGovernor` — frequency set explicitly by software (this is
  what the in-hypervisor PAS scheduler drives);
* :class:`OndemandGovernor` — the stock aggressive policy (Fig. 3);
* :class:`ConservativeGovernor` — one-step-at-a-time thresholds;
* :class:`StableGovernor` — the paper's governor: 1 s samples, mean of three
  successive samples, hysteresis margin and a dwell time (Fig. 4).

Governors plug into :class:`repro.cpu.CpuFreq` via
:meth:`~repro.cpu.CpuFreq.set_governor`.
"""

from .base import Governor
from .performance import PerformanceGovernor
from .powersave import PowersaveGovernor
from .userspace import UserspaceGovernor
from .ondemand import OndemandGovernor
from .conservative import ConservativeGovernor
from .stable import StableGovernor
from .registry import make_governor, GOVERNOR_NAMES

__all__ = [
    "Governor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "UserspaceGovernor",
    "OndemandGovernor",
    "ConservativeGovernor",
    "StableGovernor",
    "make_governor",
    "GOVERNOR_NAMES",
]
