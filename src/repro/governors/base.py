"""Governor interface.

A governor is a frequency policy attached to one :class:`~repro.cpu.CpuFreq`
instance.  Sampled governors declare a ``sampling_period``; cpufreq then
measures the nominal CPU load over each period and calls :meth:`decide`.
Static policies (performance, powersave, userspace) declare no period and
only provide :meth:`initial_frequency`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..obs import hooks as _obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.cpufreq import CpuFreq
    from ..cpu.freq_table import FrequencyTable


class Governor(ABC):
    """Base class for every frequency policy.

    Subclasses set :attr:`name` and either override :meth:`decide` (sampled
    policies) or :meth:`initial_frequency` (static policies), or both.
    """

    #: Identifier used in experiment configs and telemetry.
    name: str = "abstract"

    #: Seconds between load samples, or None for static policies.
    sampling_period: float | None = None

    def __init__(self) -> None:
        self._cpufreq: "CpuFreq | None" = None

    # ------------------------------------------------------------- plumbing

    def attach(self, cpufreq: "CpuFreq") -> None:
        """Called by cpufreq when this governor is installed."""
        self._cpufreq = cpufreq

    @property
    def cpufreq(self) -> "CpuFreq":
        """The owning cpufreq subsystem (raises before attachment)."""
        if self._cpufreq is None:
            raise ConfigurationError(f"governor {self.name!r} is not attached to cpufreq")
        return self._cpufreq

    @property
    def table(self) -> "FrequencyTable":
        """The controlled processor's frequency table."""
        return self.cpufreq.processor.table

    # --------------------------------------------------------------- policy

    def initial_frequency(self) -> int | None:
        """Frequency to apply at install time (None = leave unchanged)."""
        return None

    @abstractmethod
    def decide(self, load_percent: float, now: float) -> int | None:
        """Return the target frequency in MHz for this sample (None = keep).

        *load_percent* is the **nominal** busy percentage of the processor
        over the last sampling period — busy wall-time over wall-time, which
        is what /proc/stat-style accounting exposes.  Policies that reason in
        absolute terms convert with the processor's ``ratio * cf``.
        """

    def sampled(self, load_percent: float, now: float) -> int | None:
        """One sampling-period step: :meth:`decide`, then trace the decision.

        cpufreq routes its sampling timer through here rather than calling
        :meth:`decide` directly, so every sampled policy's decision lands in
        the ``cpufreq``-category trace under the governor's name — including
        "keep current" (``None``) decisions, which :meth:`decide` alone
        leaves invisible.
        """
        target = self.decide(load_percent, now)
        trace = _obs.TRACER
        if trace is not None:
            trace.governor_decide(now, self.name, load_percent, target)
        return target

    # --------------------------------------------------------------- helpers

    def absolute_load_percent(self, nominal_load_percent: float) -> float:
        """Convert a nominal load sample to the paper's *absolute load*.

        ``Absolute_load = Global_load * (CurrentFreq / Freq[max]) * cf`` —
        the processor load the same demand would impose at full speed (§4.2).
        """
        processor = self.cpufreq.processor
        return nominal_load_percent * processor.ratio * processor.cf
