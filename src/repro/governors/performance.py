"""The ``performance`` governor: frequency pinned at the maximum."""

from __future__ import annotations

from .base import Governor


class PerformanceGovernor(Governor):
    """Always run at the highest P-state (§2.2)."""

    name = "performance"
    sampling_period = None

    def initial_frequency(self) -> int | None:
        return self.table.max_state.freq_mhz

    def decide(self, load_percent: float, now: float) -> int | None:  # pragma: no cover
        # Static policy: never sampled.  Kept total for interface symmetry.
        return self.table.max_state.freq_mhz
