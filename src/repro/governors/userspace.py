"""The ``userspace`` governor: software sets the frequency explicitly.

This is the hook the paper's PAS scheduler uses — frequency decisions are
made inside the VM scheduler (or a user-level manager) and pushed through
:meth:`UserspaceGovernor.set_speed`, exactly like writing to
``scaling_setspeed`` in sysfs.
"""

from __future__ import annotations

from .base import Governor


class UserspaceGovernor(Governor):
    """Frequency controlled by explicit :meth:`set_speed` calls (§2.2).

    Until the first call, the processor stays at the frequency it had when
    this governor was installed (matching Linux semantics).
    """

    name = "userspace"
    sampling_period = None

    def set_speed(self, freq_mhz: int) -> bool:
        """Apply *freq_mhz*; returns True when the P-state changed."""
        return self.cpufreq.set_speed(freq_mhz)

    def decide(self, load_percent: float, now: float) -> int | None:  # pragma: no cover
        # Never sampled; decisions arrive via set_speed().
        return None
