"""The paper's own governor — "less aggressive and more stable" (§5.4).

The authors replaced the stock ondemand governor because its oscillations
made the figures unreadable; their governor keeps ondemand's *policy* (jump
to the maximum frequency under high load, fit the cheapest sufficient
frequency otherwise) but stabilises the *inputs and cadence*:

* samples once per second, so a sample spans many scheduling quanta;
* every decision uses the **mean of three successive samples**
  (footnote 5: "each time we consider the Global load, it represents an
  average of three successive processor utilization");
* a dwell time between changes ("consequently saves less energy" but is
  stable — Fig. 4 vs Fig. 3).

The high-load jump matters for a subtle reason the credit scheduler
creates: when every VM is pinned at its cap, the processor's *measured*
absolute load can never exceed the capacity of the current P-state, so a
governor that only fits measured load to capacity stalls below the maximum
frequency.  Nominal saturation (load above the up-threshold) is the signal
that demand is being clipped, and the answer is the top P-state — exactly
ondemand's rule.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigurationError
from ..units import check_non_negative, check_percent, check_positive
from .base import Governor


class StableGovernor(Governor):
    """The paper's stabilised ondemand variant (Figs. 4–10).

    Parameters
    ----------
    window:
        Number of successive samples averaged (paper: 3).
    up_threshold:
        Mean nominal load (%) above which the top frequency is selected
        (demand is being clipped by the current capacity).
    margin_percent:
        Head-room (absolute percentage points) a P-state's capacity must
        have above the averaged absolute load to be selected in the
        fit-to-capacity band.
    dwell:
        Minimum seconds between two frequency changes.
    sampling_period:
        Seconds between samples (paper-scale: 1 s).
    """

    name = "stable"

    def __init__(
        self,
        *,
        window: int = 3,
        up_threshold: float = 80.0,
        margin_percent: float = 5.0,
        dwell: float = 3.0,
        sampling_period: float = 1.0,
    ) -> None:
        super().__init__()
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.up_threshold = check_percent(up_threshold, "up_threshold", allow_zero=False)
        self.margin_percent = check_non_negative(margin_percent, "margin_percent")
        self.dwell = check_non_negative(dwell, "dwell")
        self.sampling_period = check_positive(sampling_period, "sampling_period")
        #: Retained (nominal, absolute) load sample pairs.
        self._samples: deque[tuple[float, float]] = deque(maxlen=window)
        self._last_change = -float("inf")

    @property
    def averaged_nominal_load(self) -> float:
        """Mean of the retained nominal-load samples (0 before any sample)."""
        if not self._samples:
            return 0.0
        return sum(nominal for nominal, _ in self._samples) / len(self._samples)

    @property
    def averaged_absolute_load(self) -> float:
        """Mean of the retained absolute-load samples (0 before any sample)."""
        if not self._samples:
            return 0.0
        return sum(absolute for _, absolute in self._samples) / len(self._samples)

    def decide(self, load_percent: float, now: float) -> int | None:
        # Convert *this* sample at the frequency it was measured under; the
        # running mean then mixes samples taken at different P-states, which
        # is exactly what averaging absolute loads is for.
        self._samples.append((load_percent, self.absolute_load_percent(load_percent)))
        if len(self._samples) < self.window:
            return None
        if now - self._last_change < self.dwell:
            return None
        if self.averaged_nominal_load >= self.up_threshold:
            target = self.table.max_state
        else:
            target = self.table.lowest_absorbing(
                self.averaged_absolute_load, margin_percent=self.margin_percent
            )
        if target.freq_mhz != self.cpufreq.processor.frequency_mhz:
            self._last_change = now
            return target.freq_mhz
        return None
