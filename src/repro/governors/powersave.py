"""The ``powersave`` governor: frequency pinned at the minimum."""

from __future__ import annotations

from .base import Governor


class PowersaveGovernor(Governor):
    """Always run at the lowest P-state (§2.2)."""

    name = "powersave"
    sampling_period = None

    def initial_frequency(self) -> int | None:
        return self.table.min_state.freq_mhz

    def decide(self, load_percent: float, now: float) -> int | None:  # pragma: no cover
        # Static policy: never sampled.  Kept total for interface symmetry.
        return self.table.min_state.freq_mhz
