"""Content-addressed experiment store (subsystem S12): results as a corpus.

The ROADMAP's "heavy traffic, millions of scenarios" goal treats sweep
results the way production resource managers treat measurements: a durable,
queryable corpus, not one-shot run output.  This package provides that
layer:

* :func:`cell_key` — the content address of one sweep cell: a sha256 over
  the canonical JSON of the cell's config (``to_dict()`` + type name), its
  metric list, its seed and the store schema version;
* :class:`ExperimentStore` — the on-disk store (``index.jsonl`` journal +
  one JSON blob per cell) with atomic writes, digest-checked reads,
  version-skew detection and a rebuilding :meth:`~ExperimentStore.gc`.

The sweep runner (:mod:`repro.sweep.runner`) streams finished cells into a
store and skips already-computed ones on re-run, which is what makes big
grids interruption-proof and repeated figure/table builds warm-cache::

    from repro.store import ExperimentStore
    from repro.sweep import run_sweep

    store = ExperimentStore("results-store")
    results = run_sweep(grid, workers=8, store=store)   # cold: computes
    results = run_sweep(grid, workers=8, store=store)   # warm: all hits

    python -m repro sweep --preset stress-fleet --store results-store
    python -m repro store ls --store results-store
    python -m repro store export --store results-store --out corpus.csv

Warm results are byte-identical to cold ones at any worker count: the store
holds exactly the JSON-safe reduced metrics the exports are built from, and
the runner reassembles cells in grid order regardless of where each came
from.
"""

from .keys import (
    canonical_json,
    cell_key,
    config_payload,
    metric_names,
    STORE_SCHEMA_VERSION,
)
from .store import decode_blob, encode_blob, ExperimentStore, payload_matches

__all__ = [
    "ExperimentStore",
    "payload_matches",
    "cell_key",
    "config_payload",
    "metric_names",
    "canonical_json",
    "encode_blob",
    "decode_blob",
    "STORE_SCHEMA_VERSION",
]
