"""The on-disk experiment store: ``index.jsonl`` + one blob per cell.

Layout under the store root::

    index.jsonl           append-only journal, one JSON line per put
    cells/<key>.json      the cell blob, named by its content address

Every blob is written atomically (temp file + ``os.replace``) and carries a
sha256 digest of its payload, so torn writes and bit rot are *detected*,
never silently served: :meth:`ExperimentStore.read` raises, the forgiving
:meth:`ExperimentStore.lookup` (what resume uses) treats any damaged or
version-mismatched entry as a miss and lets the runner recompute it.
Index appends are single ``write()`` calls of one line, so concurrent
writers interleave whole lines rather than corrupting each other; the
index is only a catalog — the blobs are the truth, and :meth:`gc` rebuilds
the index from them.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Iterator, Mapping, Sequence

from ..errors import (
    ConfigurationError,
    StoreCorruptionError,
    StoreError,
    StoreVersionError,
)
from .keys import canonical_json, STORE_SCHEMA_VERSION

#: Index filename under the store root.
INDEX_NAME = "index.jsonl"
#: Blob directory under the store root.
CELLS_DIR = "cells"


def encode_blob(payload: Mapping[str, Any]) -> str:
    """Serialise a blob: the payload plus a sha256 over its canonical form."""
    digest = hashlib.sha256(canonical_json(dict(payload)).encode("utf-8")).hexdigest()
    return json.dumps(
        {"payload": dict(payload), "sha256": digest}, sort_keys=True, indent=2
    ) + "\n"


def decode_blob(text: str) -> dict[str, Any]:
    """Parse and integrity-check a blob; raises on damage or version skew."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise StoreCorruptionError(f"blob is not valid JSON: {error}") from None
    if not isinstance(document, dict) or "payload" not in document:
        raise StoreCorruptionError("blob has no payload envelope")
    payload = document["payload"]
    recorded = document.get("sha256")
    actual = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    if recorded != actual:
        raise StoreCorruptionError(
            f"blob digest mismatch: recorded {str(recorded)[:12]}…, "
            f"content hashes to {actual[:12]}…"
        )
    schema = payload.get("schema")
    if schema != STORE_SCHEMA_VERSION:
        raise StoreVersionError(
            f"blob written under store schema {schema!r}, "
            f"this library speaks {STORE_SCHEMA_VERSION}"
        )
    return payload


def _filter_value_text(value: Any) -> str:
    """The text a stored value is compared against in ``--where`` clauses."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return str(value)
    return canonical_json(value)


def payload_matches(
    payload: Mapping[str, Any],
    where: Mapping[str, str | tuple[str, str]] | None,
) -> bool:
    """True when *payload* satisfies every clause of *where*.

    Each clause is looked up in the payload itself, its sweep ``params``
    and its config ``spec``.  A plain string value is an equality clause
    (``key=value``): it matches when *any* scope carries the key with a
    value comparing equal to the expected text (with a numeric fallback so
    ``seed=7`` matches the integer 7).  An ``(op, value)`` tuple with op
    ``">="`` or ``"<="`` is an inequality clause: it matches when any
    scope carries the key with a *numeric* value satisfying the
    comparison (non-numeric candidates never satisfy an inequality).
    """
    for key, expected in (where or {}).items():
        scopes = (
            payload,
            payload.get("params") or {},
            (payload.get("config") or {}).get("spec") or {},
        )
        candidates = [
            scope[key]
            for scope in scopes
            if isinstance(scope, Mapping) and key in scope
        ]
        if not candidates:
            return False
        if isinstance(expected, tuple):
            op, text = expected
            if not _any_candidate_compares(candidates, op, text):
                return False
            continue
        matched = False
        for candidate in candidates:
            if _filter_value_text(candidate) == expected:
                matched = True
                break
            try:
                if float(candidate) == float(expected):
                    matched = True
                    break
            except (TypeError, ValueError):
                pass
        if not matched:
            return False
    return True


def _any_candidate_compares(candidates: list, op: str, text: str) -> bool:
    """True when some numeric candidate satisfies ``candidate <op> text``."""
    try:
        bound = float(text)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"inequality filter needs a numeric bound, got {text!r}"
        ) from None
    for candidate in candidates:
        if isinstance(candidate, bool) or not isinstance(candidate, (int, float)):
            continue
        if op == ">=" and candidate >= bound:
            return True
        if op == "<=" and candidate <= bound:
            return True
    return False


class ExperimentStore:
    """A content-addressed, durable store of reduced sweep cells."""

    def __init__(self, root: str | pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.cells_dir = self.root / CELLS_DIR
        self.index_path = self.root / INDEX_NAME
        try:
            self.cells_dir.mkdir(parents=True, exist_ok=True)
            self.index_path.touch(exist_ok=True)
        except OSError as error:
            raise ConfigurationError(
                f"cannot open experiment store at {self.root}: {error}"
            ) from None

    # -------------------------------------------------------------- plumbing

    def blob_path(self, key: str) -> pathlib.Path:
        """Where the blob for *key* lives (whether or not it exists)."""
        return self.cells_dir / f"{key}.json"

    def _write_atomic(self, path: pathlib.Path, text: str) -> None:
        tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
        tmp.write_text(text)
        os.replace(tmp, path)

    def _append_index(self, entry: Mapping[str, Any]) -> None:
        line = canonical_json(dict(entry)) + "\n"
        # One write() of one line: concurrent appenders interleave whole
        # lines (the file is opened in append mode), never partial ones.
        with open(self.index_path, "a", encoding="utf-8") as handle:
            handle.write(line)

    # --------------------------------------------------------------- writing

    def put(
        self,
        key: str,
        *,
        config_payload: Mapping[str, Any],
        label: str,
        params: Mapping[str, Any],
        seed: int | None,
        metrics_list: Sequence[str],
        metrics: Mapping[str, Any],
    ) -> dict[str, Any]:
        """Persist one reduced cell under *key*; returns the stored payload."""
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "key": key,
            "config": dict(config_payload),
            "label": label,
            "params": dict(params),
            "seed": seed,
            "metrics_list": list(metrics_list),
            "metrics": dict(metrics),
        }
        self._write_atomic(self.blob_path(key), encode_blob(payload))
        self._append_index(
            {
                "key": key,
                "label": label,
                "config_type": payload["config"].get("type"),
            }
        )
        return payload

    # --------------------------------------------------------------- reading

    def read(self, key: str) -> dict[str, Any]:
        """The payload stored under *key*; strict.

        Raises :class:`StoreError` when absent,
        :class:`StoreCorruptionError` when the blob fails its digest, and
        :class:`StoreVersionError` on schema skew.
        """
        path = self.blob_path(key)
        try:
            text = path.read_text()
        except OSError:
            raise StoreError(f"no stored cell {key!r} in {self.root}") from None
        payload = decode_blob(text)
        if payload.get("key") != key:
            raise StoreCorruptionError(
                f"blob {path.name} claims key {str(payload.get('key'))[:12]}…"
            )
        return payload

    def lookup(self, key: str) -> dict[str, Any] | None:
        """The payload under *key*, or ``None`` when missing or unusable.

        The resume path: damage and version skew degrade to a cache miss
        (the cell is recomputed and overwritten) instead of sinking a sweep.
        """
        try:
            return self.read(key)
        except StoreError:
            return None

    def __contains__(self, key: str) -> bool:
        return self.lookup(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.cells_dir.glob("*.json"))

    def keys(self) -> list[str]:
        """Keys of every blob on disk (valid or not), sorted."""
        return sorted(path.stem for path in self.cells_dir.glob("*.json"))

    # --------------------------------------------------------------- queries

    def _index_lines(self) -> Iterator[dict[str, Any]]:
        try:
            text = self.index_path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn tail line; gc() rewrites the index
            if isinstance(entry, dict) and "key" in entry:
                yield entry

    def entries(self) -> list[dict[str, Any]]:
        """The index catalog, deduplicated by key (last write wins)."""
        merged: dict[str, dict[str, Any]] = {}
        for entry in self._index_lines():
            merged[entry["key"]] = entry
        return list(merged.values())

    def find(self, label_or_key: str) -> dict[str, Any]:
        """Resolve a cell by exact key or by label; strict read."""
        if self.blob_path(label_or_key).exists():
            return self.read(label_or_key)
        matches = sorted(
            {e["key"] for e in self.entries() if e.get("label") == label_or_key}
        )
        if not matches:
            raise StoreError(
                f"no stored cell with key or label {label_or_key!r} in {self.root}"
            )
        if len(matches) > 1:
            raise StoreError(
                f"label {label_or_key!r} is ambiguous ({len(matches)} cells); "
                f"use a key: {', '.join(k[:12] + '…' for k in matches)}"
            )
        return self.read(matches[0])

    def payloads(
        self, *, where: Mapping[str, str | tuple[str, str]] | None = None
    ) -> list[dict[str, Any]]:
        """Every *valid* stored payload, ordered by (label, key).

        *where* is a filter ANDed over clauses: a payload matches a plain
        ``{key: value}`` clause when its sweep param, its config-spec field,
        or a top-level payload field named *key* equals *value* (values
        compared as text, with a numeric fallback so ``seed=7`` matches the
        integer ``7``); an ``(op, value)`` tuple clause (op ``">="`` /
        ``"<="``) matches numerically.  The ``store ls --where
        scheduler=pas`` / ``--where seed>=5`` query path.
        """
        out = []
        for key in self.keys():
            payload = self.lookup(key)
            if payload is not None and payload_matches(payload, where):
                out.append(payload)
        out.sort(key=lambda p: (p.get("label") or "", p.get("key") or ""))
        return out

    def to_results(
        self, *, where: Mapping[str, str | tuple[str, str]] | None = None
    ):
        """All valid cells as a :class:`~repro.sweep.store.SweepResults`.

        Cells are ordered by (label, key) — deterministic whatever order
        sweeps streamed them in — and re-indexed sequentially.  *where*
        filters exactly as in :meth:`payloads`.
        """
        from ..sweep.store import CellResult, SweepResults

        cells = [
            CellResult(
                index=index,
                label=payload["label"],
                params=payload.get("params", {}),
                seed=payload.get("seed"),
                metrics=payload.get("metrics", {}),
            )
            for index, payload in enumerate(self.payloads(where=where))
        ]
        meta: dict[str, Any] = {"store": "export", "cells": len(cells)}
        if where:
            meta["where"] = dict(where)
        return SweepResults(cells, meta=meta)

    # ------------------------------------------------------------------- gc

    def gc(self) -> dict[str, int]:
        """Sweep the store: drop damaged blobs, rebuild the index.

        * blobs that fail their digest (or aren't JSON) are deleted;
        * blobs from another schema version are deleted (their keys could
          never be produced by this library version);
        * index lines pointing at no blob are dropped;
        * valid blobs missing from the index are re-indexed.

        Returns ``{"kept", "corrupt", "version_mismatch", "stale_index",
        "reindexed"}`` counts.
        """
        stats = {
            "kept": 0,
            "corrupt": 0,
            "version_mismatch": 0,
            "stale_index": 0,
            "reindexed": 0,
        }
        valid: dict[str, dict[str, Any]] = {}
        for key in self.keys():
            try:
                valid[key] = self.read(key)
            except StoreVersionError:
                stats["version_mismatch"] += 1
                self.blob_path(key).unlink(missing_ok=True)
            except StoreError:
                stats["corrupt"] += 1
                self.blob_path(key).unlink(missing_ok=True)
        stats["kept"] = len(valid)
        indexed: set[str] = set()
        lines: list[str] = []
        for entry in self.entries():
            key = entry["key"]
            if key not in valid:
                stats["stale_index"] += 1
                continue
            indexed.add(key)
            lines.append(canonical_json(entry))
        for key in sorted(set(valid) - indexed):
            payload = valid[key]
            stats["reindexed"] += 1
            lines.append(
                canonical_json(
                    {
                        "key": key,
                        "label": payload.get("label"),
                        "config_type": (payload.get("config") or {}).get("type"),
                    }
                )
            )
        self._write_atomic(
            self.index_path, "".join(line + "\n" for line in lines)
        )
        return stats
