"""Content addressing: a canonical key per (config, metrics, seed) cell.

The key is what makes the store *content*-addressed rather than
label-addressed: two grids that happen to enumerate the same cell — the
same JSON-round-tripped config, the same metric list, the same seed — hit
the same entry, whatever they called it.  The hash covers a canonical JSON
encoding (sorted keys, no whitespace) of the config's ``to_dict()`` form
plus its type name, the metric names, the seed, and the store schema
version, so a schema bump naturally invalidates every old key.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Mapping, Sequence

from ..errors import ConfigurationError

#: Bump when the blob payload layout or the key derivation changes; old
#: entries then read as version mismatches and are recomputed (or GC'd).
STORE_SCHEMA_VERSION = 1


def canonical_json(value: Any) -> str:
    """The one true JSON encoding: sorted keys, compact separators."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _digest_file(path: str) -> str:
    try:
        return hashlib.sha256(pathlib.Path(path).read_bytes()).hexdigest()
    except OSError:
        return "unreadable"


def _file_fingerprints(spec: Any, out: dict[str, str]) -> None:
    """Collect content digests of every file a spec references by path.

    Specs may point outside themselves (``trace_file`` CSVs); the path
    string alone would let an edited file serve stale cached results, so
    the referenced *bytes* join the identity.  Unreadable files hash to a
    sentinel — the cell then misses the cache and fails loudly at build
    time instead of silently reusing whatever the old file produced.
    """
    if isinstance(spec, Mapping):
        for key, value in spec.items():
            if key == "trace_file" and isinstance(value, str):
                out[value] = _digest_file(value)
            else:
                _file_fingerprints(value, out)
    elif isinstance(spec, (list, tuple)):
        for item in spec:
            _file_fingerprints(item, out)


def config_payload(config: Any) -> dict[str, Any]:
    """A config's hashable identity: type name, spec dict, referenced files."""
    to_dict = getattr(config, "to_dict", None)
    if not callable(to_dict):
        raise ConfigurationError(
            f"{type(config).__name__} is not storable: it has no to_dict() "
            "(the store keys cells by their JSON-round-tripped config)"
        )
    payload: dict[str, Any] = {"type": type(config).__name__, "spec": to_dict()}
    files: dict[str, str] = {}
    _file_fingerprints(payload["spec"], files)
    if files:
        payload["files"] = files
    return payload


def metric_names(metrics: Sequence[Any]) -> list[str]:
    """Validate that every metric is addressable by name (hashable)."""
    names = []
    for metric in metrics:
        if not isinstance(metric, str):
            raise ConfigurationError(
                f"the store needs named metrics to key cells; got "
                f"{getattr(metric, '__name__', metric)!r} — register the "
                "callable in repro.sweep.metrics.METRICS and pass its name"
            )
        names.append(metric)
    return names


def cell_key(config: Any, metrics: Sequence[str], seed: int | None) -> str:
    """The content address of one cell (sha256 hex digest).

    Raises :class:`~repro.errors.ConfigurationError` when the config cannot
    be serialised (no ``to_dict``, or a spec field that JSON cannot encode).
    """
    identity = {
        "schema": STORE_SCHEMA_VERSION,
        "config": config_payload(config),
        "metrics": metric_names(metrics),
        "seed": seed,
    }
    try:
        encoded = canonical_json(identity)
    except (TypeError, ValueError) as error:
        raise ConfigurationError(
            f"cell config {type(config).__name__} is not JSON-serialisable: {error}"
        ) from None
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
