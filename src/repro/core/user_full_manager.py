"""§4.1 design 2: *user level — credit and DVFS management*.

"A user level application monitors the VM loads.  Periodically, it computes
and sets the processor frequency which can accept the load, and it also
computes and sets the updated VM credits."

Unlike design 1 this manager owns the frequency (the host must run the
``userspace`` governor) and so can update credits *whenever the frequency
changes* — but it still lives outside the hypervisor, paying the same
reaction latency on every actuation.  The in-scheduler PAS (design 3) is
this loop moved into the scheduler tick.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..sim import PeriodicTimer
from ..units import check_non_negative, check_positive
from . import laws

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hypervisor.host import Host


class UserFullManager:
    """Monitors loads; sets frequency and Eq.-4 caps (§4.1 design 2).

    Parameters
    ----------
    host:
        The managed host (must run the ``userspace`` governor).
    poll_period:
        Seconds between load samples (one utilisation window each).
    window:
        Successive samples averaged (paper footnote 5: 3).
    margin_percent:
        Head-room added to the absolute load before frequency selection.
    reaction_latency_s:
        Seconds between deciding and the frequency/caps taking effect.
    update_dom0:
        Whether Dom0's cap is rescaled too.
    use_cf:
        Apply the correction factor ``cf``.
    """

    def __init__(
        self,
        host: "Host",
        *,
        poll_period: float = 1.0,
        window: int = 3,
        margin_percent: float = 0.0,
        reaction_latency_s: float = 0.05,
        update_dom0: bool = True,
        use_cf: bool = True,
    ) -> None:
        if host.governor.name != "userspace":
            raise ConfigurationError(
                "UserFullManager drives the frequency itself and needs the "
                f"'userspace' governor, but the host runs {host.governor.name!r}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._host = host
        self.poll_period = check_positive(poll_period, "poll_period")
        self.window = window
        self.margin_percent = check_non_negative(margin_percent, "margin_percent")
        self.reaction_latency_s = check_non_negative(reaction_latency_s, "reaction_latency_s")
        self.update_dom0 = update_dom0
        self.use_cf = use_cf
        self._samples: deque[float] = deque(maxlen=window)
        self._last_sample_time = 0.0
        self._last_busy_seconds = 0.0
        self._timer = PeriodicTimer(
            host.engine, self.poll_period, self._poll, label="user-full-manager"
        )
        self._decisions = 0

    def start(self) -> None:
        """Begin the monitor/decide/apply loop."""
        self._timer.start()

    def stop(self) -> None:
        """Stop the loop (pending applications still fire)."""
        self._timer.stop()

    @property
    def decisions(self) -> int:
        """Number of frequency+caps decisions applied (telemetry/tests)."""
        return self._decisions

    @property
    def averaged_absolute_load(self) -> float:
        """Mean of the retained absolute-load samples."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    # ------------------------------------------------------------ internals

    def _poll(self, now: float) -> None:
        host = self._host
        host.sync_accounting()
        processor = host.processor
        window_dt = now - self._last_sample_time
        busy = processor.busy_seconds - self._last_busy_seconds
        self._last_sample_time = now
        self._last_busy_seconds = processor.busy_seconds
        if window_dt <= 0:
            return
        nominal = max(0.0, min(100.0, 100.0 * busy / window_dt))
        cf = processor.cf if self.use_cf else 1.0
        self._samples.append(laws.absolute_load(nominal, processor.ratio, cf))
        if len(self._samples) < self.window:
            return
        new_freq = laws.compute_new_frequency(
            processor.table,
            self.averaged_absolute_load,
            margin_percent=self.margin_percent,
            use_cf=self.use_cf,
        )
        initial_credits = {
            domain.name: domain.credit
            for domain in host.domains
            if (self.update_dom0 or not domain.is_dom0) and domain.credit > 0
        }
        caps = laws.compensated_caps(
            processor.table, new_freq, initial_credits, use_cf=self.use_cf
        )
        if self.reaction_latency_s > 0:
            host.engine.schedule(
                self.reaction_latency_s,
                lambda: self._apply(new_freq, caps),
                label="user-full-manager.apply",
            )
        else:
            self._apply(new_freq, caps)

    def _apply(self, freq_mhz: int, caps: dict[str, float]) -> None:
        host = self._host
        scheduler = host.scheduler
        # Listing 1.2's order: credits first, then the frequency.
        for domain in host.domains:
            cap = caps.get(domain.name)
            if cap is not None:
                scheduler.set_cap(domain, cap)
        host.cpufreq.set_speed(freq_mhz)
        self._decisions += 1
        host.kick()
