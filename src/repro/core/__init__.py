"""The paper's contribution (subsystem S6): the Power-Aware Scheduler.

Three pieces, matching §4:

* :mod:`~repro.core.laws` — the proportionality laws (Eqs. 1–4) and the
  frequency-selection rule (Listing 1.1), as pure functions;
* :class:`~repro.core.pas.PasScheduler` — the in-hypervisor implementation
  (§4.1 design 3, the one the paper evaluates): a Credit scheduler whose
  tick recomputes the processor frequency and every VM's credit;
* :class:`~repro.core.user_credit_manager.UserCreditManager` and
  :class:`~repro.core.user_full_manager.UserFullManager` — the two
  user-level designs of §4.1 (credit-only under an autonomous governor, and
  credit+DVFS management), kept for the design-comparison ablation.
"""

from . import laws
from .pas import PasScheduler
from .user_credit_manager import UserCreditManager
from .user_full_manager import UserFullManager

__all__ = ["laws", "PasScheduler", "UserCreditManager", "UserFullManager"]
