"""The Power-Aware Scheduler (PAS) — in-hypervisor implementation (§4).

This is §4.1's third design, the one the paper evaluates: "implement it as an
extension of the VM scheduler.  DVFS and VM credit computations and
adaptations are then performed each time a scheduling decision is made."

Concretely, PAS extends the Credit scheduler.  On its tick it:

1. measures the processor's nominal load and converts it to the *absolute
   load* (``load * ratio * cf``, Eq. 1), keeping the paper's average of
   three successive utilisation samples (footnote 5);
2. computes the lowest frequency whose capacity absorbs the absolute load
   (Listing 1.1 / :func:`repro.core.laws.compute_new_frequency`);
3. rescales every domain's cap to ``C_init / (ratio * cf)`` (Eq. 4 /
   Listing 1.2) — active VMs get their lost capacity back, lazy VMs get a
   meaningless-but-harmless higher limit, and **no VM can ever consume more
   absolute capacity than it was sold**, which is what lets the frequency
   stay down (§3.2's design principles);
4. applies the new frequency through cpufreq (Listing 1.2 sets credits
   first, then the frequency — same order here).

PAS owns the frequency, so the host must run the ``userspace`` governor
(enforced at the first tick), mirroring how the real implementation bypasses
Xen's governors.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigurationError
from ..schedulers.credit import CreditScheduler
from ..units import check_non_negative, check_positive
from . import laws


class PasScheduler(CreditScheduler):
    """Credit scheduler + DVFS-aware credit enforcement (the contribution).

    Parameters
    ----------
    sample_period:
        Seconds of load history per utilisation sample (paper-scale: 1 s).
    window:
        Successive samples averaged (paper: 3).
    margin_percent:
        Optional head-room added to the absolute load before frequency
        selection (0 = the paper's strict ``>`` comparison).
    update_dom0:
        Whether Dom0's cap is rescaled too (the paper rescales every VM the
        scheduler manages; Dom0 is one of them).
    use_cf:
        Apply the per-P-state correction factor ``cf`` (True, the paper's
        algorithm).  False is the cf-blind ablation.
    Remaining keyword arguments go to :class:`CreditScheduler`.
    """

    name = "pas"

    def __init__(
        self,
        *,
        sample_period: float = 1.0,
        window: int = 3,
        margin_percent: float = 0.0,
        update_dom0: bool = True,
        use_cf: bool = True,
        **credit_kwargs,
    ) -> None:
        super().__init__(**credit_kwargs)
        self.sample_period = check_positive(sample_period, "sample_period")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.margin_percent = check_non_negative(margin_percent, "margin_percent")
        self.update_dom0 = update_dom0
        self.use_cf = use_cf
        self._samples: deque[float] = deque(maxlen=window)
        self._last_sample_time = 0.0
        self._last_busy_seconds = 0.0
        self._governor_checked = False
        self._freq_updates = 0
        self._cap_updates = 0

    # ------------------------------------------------------------------ tick

    def tick(self, now: float) -> bool:
        """Credit bookkeeping plus the PAS control loop (Listings 1.1/1.2)."""
        hint = super().tick(now)
        if not self._governor_checked:
            self._require_userspace_governor()
        if now - self._last_sample_time >= self.sample_period - 1e-9:
            self._take_sample(now)
            if self._update_dvfs_and_credits():
                hint = True
        return hint

    def _require_userspace_governor(self) -> None:
        governor = self.host.governor
        if governor.name != "userspace":
            raise ConfigurationError(
                "the PAS scheduler drives the frequency itself and needs the "
                f"'userspace' governor, but the host runs {governor.name!r}; "
                "build the host with governor='userspace'"
            )
        self._governor_checked = True

    # -------------------------------------------------------------- sampling

    def _take_sample(self, now: float) -> None:
        host = self.host
        host.sync_accounting()
        processor = host.processor
        window_dt = now - self._last_sample_time
        busy = processor.busy_seconds - self._last_busy_seconds
        self._last_sample_time = now
        self._last_busy_seconds = processor.busy_seconds
        if window_dt <= 0:
            return
        nominal = max(0.0, min(100.0, 100.0 * busy / window_dt))
        cf = processor.cf if self.use_cf else 1.0
        self._samples.append(laws.absolute_load(nominal, processor.ratio, cf))

    @property
    def averaged_absolute_load(self) -> float:
        """Mean of retained absolute-load samples — the paper's footnote 5."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    # --------------------------------------------------- Listings 1.1 / 1.2

    def compute_new_frequency(self) -> int:
        """Listing 1.1 on the averaged absolute load."""
        return laws.compute_new_frequency(
            self.host.processor.table,
            self.averaged_absolute_load,
            margin_percent=self.margin_percent,
            use_cf=self.use_cf,
        )

    def _update_dvfs_and_credits(self) -> bool:
        """Listing 1.2: recompute caps for the new frequency, then apply it."""
        if len(self._samples) < self.window:
            return False
        host = self.host
        new_freq = self.compute_new_frequency()
        initial_credits = {
            domain.name: domain.credit
            for domain in host.domains
            if (self.update_dom0 or not domain.is_dom0) and domain.credit > 0
        }
        new_caps = laws.compensated_caps(
            host.processor.table, new_freq, initial_credits, use_cf=self.use_cf
        )
        changed = False
        for domain in host.domains:
            cap = new_caps.get(domain.name)
            if cap is None:
                continue
            if abs(self.cap_of(domain) - cap) > 1e-9:
                self.set_cap(domain, cap)
                self._cap_updates += 1
                changed = True
        if host.cpufreq.set_speed(new_freq):
            self._freq_updates += 1
            changed = True
        return changed

    # -------------------------------------------------------------- queries

    @property
    def frequency_updates(self) -> int:
        """Number of effective frequency changes PAS issued."""
        return self._freq_updates

    @property
    def cap_updates(self) -> int:
        """Number of effective per-domain cap changes PAS issued."""
        return self._cap_updates
