"""§4.1 design 1: *user level — credit management*.

"We let the Ondemand governor manage the processor frequency.  Then, a user
level application monitors the processor frequency, and periodically
computes and sets VM credits in order to guarantee initially allocated
credits."

This manager runs beside any frequency-autonomous governor (ondemand,
stable, conservative): every *poll_period* it reads the current P-state and
pushes Eq.-4 caps through the scheduler, *reaction latency* later — the
paper's reason to reject this design is exactly that system-call plumbing
"may lack reactivity", which the design-comparison ablation quantifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import PeriodicTimer
from ..units import check_non_negative, check_positive
from . import laws

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hypervisor.host import Host


class UserCreditManager:
    """Polls the frequency; rescales VM caps by Eq. 4 (§4.1 design 1).

    Parameters
    ----------
    host:
        The host whose scheduler's caps are managed (the scheduler must
        support caps, i.e. be the Credit family).
    poll_period:
        Seconds between polls of the current frequency.
    reaction_latency_s:
        Seconds between reading the frequency and the caps taking effect
        (models the user-level round trip through hypercalls/sysfs).
    update_dom0:
        Whether Dom0's cap is rescaled too.
    use_cf:
        Apply the correction factor ``cf`` in Eq. 4.
    """

    def __init__(
        self,
        host: "Host",
        *,
        poll_period: float = 1.0,
        reaction_latency_s: float = 0.05,
        update_dom0: bool = True,
        use_cf: bool = True,
    ) -> None:
        self._host = host
        self.poll_period = check_positive(poll_period, "poll_period")
        self.reaction_latency_s = check_non_negative(reaction_latency_s, "reaction_latency_s")
        self.update_dom0 = update_dom0
        self.use_cf = use_cf
        self._timer = PeriodicTimer(
            host.engine, self.poll_period, self._poll, label="user-credit-manager"
        )
        self._applied_caps = 0

    def start(self) -> None:
        """Begin polling."""
        self._timer.start()

    def stop(self) -> None:
        """Stop polling (pending applications still fire)."""
        self._timer.stop()

    @property
    def applied_caps(self) -> int:
        """Number of cap applications performed (telemetry/tests)."""
        return self._applied_caps

    # ------------------------------------------------------------ internals

    def _poll(self, now: float) -> None:
        freq_mhz = self._host.processor.frequency_mhz
        initial_credits = {
            domain.name: domain.credit
            for domain in self._host.domains
            if (self.update_dom0 or not domain.is_dom0) and domain.credit > 0
        }
        caps = laws.compensated_caps(
            self._host.processor.table, freq_mhz, initial_credits, use_cf=self.use_cf
        )
        if self.reaction_latency_s > 0:
            self._host.engine.schedule(
                self.reaction_latency_s,
                lambda: self._apply(caps),
                label="user-credit-manager.apply",
            )
        else:
            self._apply(caps)

    def _apply(self, caps: dict[str, float]) -> None:
        scheduler = self._host.scheduler
        for domain in self._host.domains:
            cap = caps.get(domain.name)
            if cap is not None:
                scheduler.set_cap(domain, cap)
                self._applied_caps += 1
        self._host.kick()
