"""The paper's proportionality laws (§4.2), as pure functions.

Notation follows the paper: frequencies appear as subscripts, credits as
exponents.  ``ratio_i = F_i / F_max``; ``cf_i`` is the per-architecture
correction factor validated in §5.2 and measured per machine in Table 1.

* **Eq. 1** (frequency vs load): ``L_max / L_i = ratio_i * cf_i`` — a demand
  that loads the processor ``L_max`` at full speed loads it
  ``L_max / (ratio_i * cf_i)`` at P-state *i*.
* **Eq. 2** (frequency vs time): ``T_max / T_i = ratio_i * cf_i`` — execution
  times stretch by the same factor.
* **Eq. 3** (credit vs time): ``T_init / T_j = C_j / C_init`` — doubling a
  VM's credit halves its execution time.
* **Eq. 4** (compensation): ``C_j = C_init / (ratio_i * cf_i)`` — the credit
  that, at P-state *i*, restores the computing capacity the VM had with
  ``C_init`` at full frequency.
* **Listing 1.1**: the lowest frequency whose capacity exceeds the current
  absolute load.

These functions are the single source of truth: the PAS scheduler, both
user-level managers, the stable governor and the validation experiments all
call into this module.
"""

from __future__ import annotations

from ..cpu.freq_table import FrequencyTable
from ..errors import ConfigurationError
from ..units import check_non_negative, check_positive


def frequency_ratio(freq_mhz: float, max_freq_mhz: float) -> float:
    """``ratio_i = F_i / F_max`` (paper §4.2)."""
    check_positive(freq_mhz, "freq_mhz")
    check_positive(max_freq_mhz, "max_freq_mhz")
    if freq_mhz > max_freq_mhz:
        raise ConfigurationError(
            f"freq {freq_mhz} exceeds the maximum {max_freq_mhz}"
        )
    return freq_mhz / max_freq_mhz


def load_at_frequency(load_at_max_percent: float, ratio: float, cf: float = 1.0) -> float:
    """Eq. 1 solved for ``L_i``: the load the same demand imposes at P-state i.

    The result may exceed 100 — that means the demand does not fit at this
    frequency (callers decide whether to clamp).
    """
    check_non_negative(load_at_max_percent, "load_at_max_percent")
    check_positive(ratio, "ratio")
    check_positive(cf, "cf")
    return load_at_max_percent / (ratio * cf)


def absolute_load(nominal_load: float, ratio: float, cf: float = 1.0) -> float:
    """Eq. 1 solved for ``L_max`` — the paper's *Absolute load* (§4.2).

    ``Absolute_load = Global_load * CurrentFreq / Freq[max] * cf``.
    """
    check_non_negative(nominal_load, "nominal_load")
    check_positive(ratio, "ratio")
    check_positive(cf, "cf")
    return nominal_load * ratio * cf


def execution_time_at_frequency(time_at_max_s: float, ratio: float, cf: float = 1.0) -> float:
    """Eq. 2: execution time at P-state i, given the time at full speed."""
    check_positive(time_at_max_s, "time_at_max_s")
    check_positive(ratio, "ratio")
    check_positive(cf, "cf")
    return time_at_max_s / (ratio * cf)


def execution_time_at_credit(
    time_at_initial_credit_s: float, initial_credit: float, new_credit: float
) -> float:
    """Eq. 3: execution time after changing the credit at fixed frequency."""
    check_positive(time_at_initial_credit_s, "time_at_initial_credit_s")
    check_positive(initial_credit, "initial_credit")
    check_positive(new_credit, "new_credit")
    return time_at_initial_credit_s * initial_credit / new_credit


def compensated_credit(initial_credit: float, ratio: float, cf: float = 1.0) -> float:
    """Eq. 4: ``C_j = C_init / (ratio_i * cf_i)``.

    The credit that gives a VM the same computing capacity at P-state *i*
    that ``initial_credit`` gave it at the maximum frequency.  The result may
    exceed 100 when the frequency is low — the paper notes the sum of VM
    credits may then exceed 100 %, which is fine for *limits* (Listing 1.2).
    """
    check_non_negative(initial_credit, "initial_credit")
    check_positive(ratio, "ratio")
    check_positive(cf, "cf")
    return initial_credit / (ratio * cf)


def compute_new_frequency(
    table: FrequencyTable,
    absolute_load_percent: float,
    *,
    margin_percent: float = 0.0,
    use_cf: bool = True,
) -> int:
    """Listing 1.1: the lowest frequency that absorbs *absolute_load_percent*.

    Iterates P-states in ascending order and returns the first whose
    capacity ``ratio * 100 * cf`` strictly exceeds the absolute load (plus
    an optional *margin*); the maximum frequency if none qualifies.

    ``use_cf=False`` implements the cf-blind variant for the ablation that
    quantifies what ignoring Table 1's correction factors costs.
    """
    check_non_negative(absolute_load_percent, "absolute_load_percent")
    check_non_negative(margin_percent, "margin_percent")
    max_freq = table.max_state.freq_mhz
    for state in table:
        cf = state.cf if use_cf else 1.0
        capacity_percent = state.ratio_to(max_freq) * 100.0 * cf
        if capacity_percent > absolute_load_percent + margin_percent:
            return state.freq_mhz
    return max_freq


def compensated_caps(
    table: FrequencyTable,
    freq_mhz: int,
    initial_credits: dict[str, float],
    *,
    use_cf: bool = True,
) -> dict[str, float]:
    """Listing 1.2's loop body: Eq.-4 credits for every VM at *freq_mhz*.

    Returns ``{domain_name: new_cap_percent}``.  Pure helper shared by the
    PAS scheduler and both user-level managers.
    """
    state = table.state_for(freq_mhz)
    ratio = state.ratio_to(table.max_state.freq_mhz)
    cf = state.cf if use_cf else 1.0
    return {
        name: compensated_credit(credit, ratio, cf)
        for name, credit in initial_credits.items()
    }
