"""Frequency domains: clusters of cores sharing one P-state.

On big.LITTLE parts (and most multi-cluster silicon — devlib's
``module/cpufreq.py`` exposes exactly this) cores do not scale frequency
independently: each *frequency domain* (cluster) has one clock, so setting
any core's P-state moves the whole cluster.  Governors and the PAS policy
must therefore reason per-domain, not per-core.

A :class:`DomainSpec` describes one cluster: its cores, P-state table,
power model, C-state ladder and its capacity relative to the reference
host (the homogeneous machine model's "100 %").  A
:class:`FrequencyDomain` is the runtime object: current shared P-state,
busy/idle accounting with residency-aware C-state selection
(:func:`~repro.cpu.cstate.deepest_cstate`), and an energy integrator.

The invariant the coupling guarantees — and the property tests assert —
is that a core's capacity is *always* the capacity of its domain's current
P-state: there is no per-core frequency to disagree with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import check_fraction, check_non_negative, check_positive
from .cstate import CState, deepest_cstate
from .freq_table import FrequencyTable
from .power import PowerModel
from .pstate import PState

__all__ = ["DomainSpec", "FrequencyDomain", "IDLE_GAP_QUANTUM_S"]

#: Nominal scheduling quantum the intra-epoch idle-gap model assumes: a
#: partially-utilised domain idles in gaps of ``(1 - util) * quantum``
#: rather than one contiguous block, so light load keeps the domain in
#: shallow C-states while a fully idle epoch reaches the deepest state.
IDLE_GAP_QUANTUM_S = 0.01


@dataclass(frozen=True)
class DomainSpec:
    """One frequency domain (cluster) of a heterogeneous processor."""

    name: str
    #: Cores in the cluster (they share the P-state; capacity is expressed
    #: at domain level, like the homogeneous model's machine level).
    cores: int
    states: tuple[PState, ...]
    power: PowerModel = field(default_factory=PowerModel)
    #: Idle-state ladder, ascending by target residency; empty = the
    #: legacy single-idle-watt behaviour.
    cstates: tuple[CState, ...] = ()
    #: Domain capacity at its top P-state as a fraction of the reference
    #: host capacity (the homogeneous machine's 100 %).  A big.LITTLE
    #: efficiency cluster sits well below its big sibling here.
    capacity_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a frequency domain needs a non-empty name")
        if self.cores < 1:
            raise ConfigurationError(f"domain {self.name!r} needs >= 1 core, got {self.cores}")
        check_positive(self.capacity_scale, "capacity_scale")
        residencies = [state.target_residency_s for state in self.cstates]
        if residencies != sorted(residencies):
            raise ConfigurationError(
                f"domain {self.name!r}: C-states must ascend by target residency"
            )
        names = [state.name for state in self.cstates]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"domain {self.name!r}: duplicate C-state names {names}"
            )

    def table(self) -> FrequencyTable:
        """Build the domain's frequency table."""
        return FrequencyTable(self.states)


class FrequencyDomain:
    """Runtime state of one cluster: shared P-state, residency, energy.

    All cores move together: :meth:`set_frequency` is the only frequency
    knob, and :meth:`core_capacity_fraction` answers identically for every
    core index — the domain coupling governors must reason about.
    """

    def __init__(self, spec: DomainSpec) -> None:
        self.spec = spec
        self._table = spec.table()
        self.freq_mhz = self._table.max_state.freq_mhz
        self.energy_joules = 0.0
        self.busy_seconds = 0.0
        self.elapsed_seconds = 0.0
        #: Idle seconds per C-state; "C0" collects shallow idle (gaps too
        #: short for any state, plus entry/exit transition time).
        self.residency_s: dict[str, float] = {"C0": 0.0}
        for cstate in spec.cstates:
            self.residency_s[cstate.name] = 0.0
        self.last_util_fraction = 0.0
        self.last_power_w = 0.0
        self.last_cstate = "C0"

    @property
    def table(self) -> FrequencyTable:
        """The domain's P-state table (shared by all its cores)."""
        return self._table

    @property
    def state(self) -> PState:
        """Current shared P-state."""
        return self._table.state_for(self.freq_mhz)

    def set_frequency(self, freq_mhz: int) -> bool:
        """Move the whole cluster to *freq_mhz*; True when it changed.

        The frequency must be a table entry (use the table's own clamp
        queries to snap policy bounds first), exactly like the
        single-processor :meth:`~repro.cpu.processor.Processor.set_frequency`.
        """
        state = self._table.state_for(freq_mhz)
        changed = state.freq_mhz != self.freq_mhz
        self.freq_mhz = state.freq_mhz
        return changed

    # -------------------------------------------------------------- capacity

    def capacity_percent_at(self, state: PState) -> float:
        """Domain capacity at *state*, in percent of the reference host."""
        max_freq = self._table.max_state.freq_mhz
        return state.capacity_fraction(max_freq) * 100.0 * self.spec.capacity_scale

    @property
    def capacity_percent(self) -> float:
        """Capacity at the current shared P-state."""
        return self.capacity_percent_at(self.state)

    @property
    def max_capacity_percent(self) -> float:
        """Capacity at the top P-state."""
        return self.capacity_percent_at(self._table.max_state)

    def core_capacity_fraction(self, core_index: int) -> float:
        """Per-core delivered-speed fraction — identical for every core.

        The domain coupling invariant: a core cannot run at a different
        P-state than its cluster, so every core answers with the domain
        state's ``ratio * cf``.
        """
        if not 0 <= core_index < self.spec.cores:
            raise ConfigurationError(
                f"domain {self.spec.name!r} has cores 0..{self.spec.cores - 1}, "
                f"got index {core_index}"
            )
        return self.state.capacity_fraction(self._table.max_state.freq_mhz)

    # ------------------------------------------------------------ accounting

    def account_epoch(
        self, dt: float, utilization_fraction: float, *, idle_quantum_s: float = IDLE_GAP_QUANTUM_S
    ) -> float:
        """Integrate *dt* seconds at *utilization_fraction*; returns joules.

        Busy time is billed at the current P-state's full-load power.  Idle
        time is billed through the C-state ladder: a fully idle epoch is
        one gap of length *dt*; a partially utilised one idles in gaps of
        ``(1 - utilization_fraction) * idle_quantum_s`` (the scheduling-quantum
        fragmentation model), so light load stays in shallow states.  Each
        gap's entry/exit transition time is billed as C0 at the P-state's
        shallow idle power.  Residency plus busy time always sums to the
        elapsed wall time — the accounting invariant the tests assert.
        """
        check_non_negative(dt, "dt")
        check_fraction(utilization_fraction, "utilization_fraction")
        check_positive(idle_quantum_s, "idle_quantum_s")
        if dt == 0.0:
            return 0.0
        state = self.state
        busy_s = dt * utilization_fraction
        idle_s = dt - busy_s
        busy_power_w = self.spec.power.power(state, self._table, 1.0)
        shallow_idle_w = self.spec.power.power(state, self._table, 0.0)
        energy = busy_s * busy_power_w
        chosen = "C0"
        if idle_s > 0.0:
            gap_s = (
                idle_s
                if utilization_fraction == 0.0
                else (1.0 - utilization_fraction) * idle_quantum_s
            )
            cstate = deepest_cstate(self.spec.cstates, gap_s)
            if cstate is None:
                self.residency_s["C0"] += idle_s
                energy += idle_s * shallow_idle_w
            else:
                chosen = cstate.name
                # Transition time never exceeds the gap it serves.
                shallow_share = min(1.0, cstate.transition_s / gap_s)
                shallow_s = idle_s * shallow_share
                deep_s = idle_s - shallow_s
                self.residency_s["C0"] += shallow_s
                self.residency_s[cstate.name] += deep_s
                energy += shallow_s * shallow_idle_w + deep_s * cstate.power_w
        self.busy_seconds += busy_s
        self.elapsed_seconds += dt
        self.energy_joules += energy
        self.last_util_fraction = utilization_fraction
        self.last_power_w = energy / dt
        self.last_cstate = chosen if idle_s > 0.0 else "C0"
        return energy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrequencyDomain({self.spec.name!r}, {self.freq_mhz}MHz, "
            f"cores={self.spec.cores}, energy={self.energy_joules:.1f}J)"
        )
