"""Analytic processor power model.

Used by the energy ablation benchmarks (the paper motivates PAS with energy
saving but reports loads and times; we additionally integrate power so the
"SEDF wastes energy under thrashing" claim in §3.2/§5.6 becomes measurable).

The model is the standard CMOS decomposition:

``P(state, util) = P_idle(state) + (P_busy_max - P_idle_max) * util * (V/Vmax)^2 * (f/fmax)``

* dynamic power scales with ``C * V^2 * f`` and the fraction of cycles doing
  work (*util*);
* idle power shrinks with the square of voltage (leakage is in truth
  super-linear in V; the quadratic term is the usual first-order model).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import check_fraction, check_positive
from .freq_table import FrequencyTable
from .pstate import PState


@dataclass(frozen=True, slots=True)
class PowerModel:
    """Watts as a function of P-state and utilisation.

    Parameters
    ----------
    idle_watts:
        Package power at the *maximum* P-state with 0 % utilisation.
    busy_watts:
        Package power at the *maximum* P-state with 100 % utilisation.
    """

    idle_watts: float = 45.0
    busy_watts: float = 95.0

    def __post_init__(self) -> None:
        check_positive(self.idle_watts, "idle_watts")
        check_positive(self.busy_watts, "busy_watts")
        if self.busy_watts < self.idle_watts:
            raise ConfigurationError(
                f"busy_watts ({self.busy_watts}) must be >= idle_watts ({self.idle_watts})"
            )

    def power(self, state: PState, table: FrequencyTable, utilization_fraction: float) -> float:
        """Instantaneous package watts at *state* with *utilization_fraction* in [0, 1]."""
        check_fraction(utilization_fraction, "utilization_fraction")
        max_state = table.max_state
        voltage_ratio_sq = (state.voltage / max_state.voltage) ** 2
        freq_ratio = state.freq_mhz / max_state.freq_mhz
        dynamic_span = self.busy_watts - self.idle_watts
        idle = self.idle_watts * voltage_ratio_sq
        dynamic = dynamic_span * utilization_fraction * voltage_ratio_sq * freq_ratio
        return idle + dynamic

    def energy(self, state: PState, table: FrequencyTable, utilization_fraction: float, dt: float) -> float:
        """Joules consumed over *dt* seconds at constant state and utilisation."""
        check_positive(dt, "dt")
        return self.power(state, table, utilization_fraction) * dt
