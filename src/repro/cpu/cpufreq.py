"""The cpufreq subsystem.

Mirrors the Linux kernel component of the same name (§2.2): it owns the
processor's operating point, hosts exactly one *governor* at a time, samples
CPU utilisation on the governor's period, and applies the governor's
frequency decisions.  The hypervisor only ever touches the processor's
frequency through this object (or not at all, when the PAS scheduler drives
frequency itself — in that case cpufreq runs the ``userspace`` governor and
PAS calls :meth:`set_speed`, exactly like the paper's in-Xen implementation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..errors import ConfigurationError
from ..obs import hooks as _obs
from ..sim import Engine, PeriodicTimer
from .processor import Processor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..governors.base import Governor


class CpuFreq:
    """Governor host and frequency setter for one processor.

    Parameters
    ----------
    engine:
        The simulation engine (drives the governor's sampling timer).
    processor:
        The processor whose P-state this subsystem controls.
    """

    def __init__(self, engine: Engine, processor: Processor) -> None:
        self._engine = engine
        self._processor = processor
        self._governor: "Governor | None" = None
        self._timer: PeriodicTimer | None = None
        self._last_sample_time = 0.0
        self._last_busy_seconds = 0.0
        self._requests = 0
        self._last_load_percent = 0.0
        self._observers: list[Callable[[int], None]] = []
        self._pre_observers: list[Callable[[int], None]] = []
        self._min_freq: int | None = None
        self._max_freq: int | None = None

    # ------------------------------------------------------------- accessors

    @property
    def processor(self) -> Processor:
        """The processor under control."""
        return self._processor

    @property
    def governor(self) -> "Governor | None":
        """The active governor, or None before :meth:`set_governor`."""
        return self._governor

    @property
    def requests(self) -> int:
        """Total frequency requests made (including no-op repeats)."""
        return self._requests

    @property
    def last_load_percent(self) -> float:
        """Most recent sampled CPU load (nominal busy %, 0-100)."""
        return self._last_load_percent

    # ------------------------------------------------------------- governors

    def set_governor(self, governor: "Governor") -> None:
        """Install *governor* and start its sampling timer.

        Replaces any previous governor; the previous sampling timer is
        stopped first so exactly one policy is ever active.
        """
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        self._governor = governor
        governor.attach(self)
        if governor.sampling_period is not None:
            self._timer = PeriodicTimer(
                self._engine,
                governor.sampling_period,
                self._sample_and_decide,
                label=f"cpufreq.{governor.name}",
            )
            self._timer.start()
        # Let static policies (performance/powersave/userspace) take effect
        # immediately instead of waiting for a sample that never comes.
        initial = governor.initial_frequency()
        if initial is not None:
            self.set_speed(initial)

    def stop(self) -> None:
        """Stop the sampling timer (used at end of experiment)."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # ------------------------------------------------------------ frequency

    def set_policy_limits(self, min_mhz: int | None = None, max_mhz: int | None = None) -> None:
        """Constrain every future frequency request to ``[min, max]``.

        The simulated ``scaling_min_freq`` / ``scaling_max_freq`` policy
        knobs: the Table 2 platform models use the *min* limit to express how
        deep each vendor's governor is willing to clock down.
        """
        table = self._processor.table
        if min_mhz is not None:
            min_mhz = table.clamp(min_mhz).freq_mhz
        if max_mhz is not None:
            max_mhz = table.clamp_down(max_mhz).freq_mhz
        if min_mhz is not None and max_mhz is not None and min_mhz > max_mhz:
            raise ConfigurationError(
                f"policy min {min_mhz} MHz exceeds policy max {max_mhz} MHz"
            )
        self._min_freq = min_mhz
        self._max_freq = max_mhz

    @property
    def policy_limits(self) -> tuple[int | None, int | None]:
        """Current ``(min, max)`` policy limits in MHz."""
        return self._min_freq, self._max_freq

    def set_speed(self, freq_mhz: int) -> bool:
        """Apply *freq_mhz* (a table entry), within the policy limits.

        Returns True when the P-state actually changed.
        """
        self._requests += 1
        table = self._processor.table
        if self._min_freq is not None and freq_mhz < self._min_freq:
            freq_mhz = self._min_freq
        if self._max_freq is not None and freq_mhz > self._max_freq:
            freq_mhz = self._max_freq
        freq_mhz = table.state_for(freq_mhz).freq_mhz
        will_change = self._processor.table.state_for(freq_mhz) is not self._processor.state
        if will_change:
            for observer in self._pre_observers:
                observer(freq_mhz)
        changed = self._processor.set_frequency(freq_mhz)
        if changed:
            trace = _obs.TRACER
            if trace is not None:
                trace.pstate(self._engine.now, freq_mhz)
            for observer in self._observers:
                observer(freq_mhz)
        return changed

    def add_observer(self, callback: Callable[[int], None]) -> None:
        """Register *callback(new_freq_mhz)* to fire after each real change.

        The hypervisor uses this to preempt the in-flight scheduling slice:
        work accrual assumes a constant capacity during a slice, so a P-state
        change forces a re-dispatch at the new capacity.
        """
        self._observers.append(callback)

    def add_pre_observer(self, callback: Callable[[int], None]) -> None:
        """Register *callback(new_freq_mhz)* to fire just *before* a change.

        The hypervisor uses this to fold the in-flight slice prefix (or idle
        gap) into the books while the outgoing P-state is still current, so
        energy and time-in-state are billed at the state that actually ran.
        """
        self._pre_observers.append(callback)

    # ------------------------------------------------------------- sampling

    def measure_load_percent(self) -> float:
        """Nominal busy % of the processor since the previous measurement.

        "Nominal" means relative to the *current* frequency's wall-clock —
        this is what /proc/stat-style sampling sees and what the stock
        ondemand governor bases decisions on.
        """
        now = self._engine.now
        window = now - self._last_sample_time
        if window <= 0.0:
            return self._last_load_percent
        busy = self._processor.busy_seconds - self._last_busy_seconds
        self._last_sample_time = now
        self._last_busy_seconds = self._processor.busy_seconds
        load = max(0.0, min(100.0, 100.0 * busy / window))
        self._last_load_percent = load
        return load

    def _sample_and_decide(self, now: float) -> None:
        if self._governor is None:  # pragma: no cover - timer only runs with one
            raise ConfigurationError("cpufreq timer fired without a governor")
        load = self.measure_load_percent()
        target = self._governor.sampled(load, now)
        if target is not None:
            self.set_speed(target)
