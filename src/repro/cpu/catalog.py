"""Catalog of the processors measured in the paper.

* ``OPTIPLEX_755`` — the evaluation testbed (§5.1): DELL Optiplex 755 with an
  Intel Core 2 Duo at 2.66 GHz run in single-processor mode.  The five
  frequencies are read off the right-hand axes of Figs. 2–10
  (1600/1867/2133/2400/2667 MHz); ``cf`` is 1.0, consistent with the paper
  using this machine to validate the pure proportionality law.
* Table 1 machines (§5.8, Grid'5000): Xeon X3440, Xeon L5420, Xeon E5-2620,
  Opteron 6164 HE — each with the paper's measured ``cf_min`` at its lowest
  frequency.  The paper notes many of these parts expose only two
  frequencies; we model L5420 and 6164 HE that way.
* ``CORE_I7_3770`` — the HP Elite 8300 used for Table 2 (§5.8).

``cf`` between the endpoints is interpolated linearly in frequency: the
correction factor captures the memory-bound share of the workload, which
grows as the core slows relative to the (constant-speed) memory — a smooth,
monotone effect.  Power figures are plausible desktop/server envelopes; only
relative energy matters in the benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError
from .cstate import make_cstates
from .domains import DomainSpec
from .power import PowerModel
from .processor import ProcessorSpec, make_states


def _interpolated_cf(freqs: Sequence[int], cf_min: float) -> list[float]:
    """Linear ramp from ``cf_min`` at the lowest frequency to 1.0 at the top."""
    freqs = sorted(freqs)
    low, high = freqs[0], freqs[-1]
    if low == high:
        return [1.0]
    return [1.0 - (1.0 - cf_min) * (high - f) / (high - low) for f in freqs]


def spec_with_cf_min(
    name: str,
    freqs_mhz: Sequence[int],
    cf_min: float,
    *,
    power: PowerModel | None = None,
) -> ProcessorSpec:
    """Build a spec whose ``cf`` ramps linearly from *cf_min* up to 1.0."""
    cfs = _interpolated_cf(freqs_mhz, cf_min)
    return ProcessorSpec(
        name=name,
        states=make_states(sorted(freqs_mhz), cf=cfs),
        power=power or PowerModel(),
    )


#: The paper's evaluation testbed (DELL Optiplex 755, §5.1).
OPTIPLEX_755 = ProcessorSpec(
    name="Intel Core 2 Duo E6750 (Optiplex 755)",
    states=make_states([1600, 1867, 2133, 2400, 2667], cf=1.0),
    power=PowerModel(idle_watts=40.0, busy_watts=85.0),
)

#: Table 1, column 1: cf_min = 0.94867.
XEON_X3440 = spec_with_cf_min(
    "Intel Xeon X3440",
    [1200, 1467, 1733, 2000, 2267, 2533],
    0.94867,
    power=PowerModel(idle_watts=50.0, busy_watts=110.0),
)

#: Table 1, column 2: cf_min = 0.99903 (two frequencies only).
XEON_L5420 = spec_with_cf_min(
    "Intel Xeon L5420",
    [2000, 2500],
    0.99903,
    power=PowerModel(idle_watts=45.0, busy_watts=100.0),
)

#: Table 1, column 3: cf_min = 0.80338 — the strongly memory-bound outlier.
XEON_E5_2620 = spec_with_cf_min(
    "Intel Xeon E5-2620",
    [1200, 1400, 1600, 1800, 2000],
    0.80338,
    power=PowerModel(idle_watts=55.0, busy_watts=120.0),
)

#: Table 1, column 4: cf_min = 0.99508 (two frequencies only).
OPTERON_6164_HE = spec_with_cf_min(
    "AMD Opteron 6164 HE",
    [800, 1700],
    0.99508,
    power=PowerModel(idle_watts=50.0, busy_watts=115.0),
)

#: Table 1, column 5 and the Table 2 testbed (HP Elite 8300): cf_min = 0.86206.
CORE_I7_3770 = spec_with_cf_min(
    "Intel Core i7-3770",
    [1600, 2000, 2400, 2800, 3100, 3400],
    0.86206,
    power=PowerModel(idle_watts=35.0, busy_watts=95.0),
)

#: Idle ladder of the big.LITTLE clusters: clock-gate (C1) for sub-ms
#: gaps, cluster retention (C2) past 2 ms, cluster off (C3) past 50 ms —
#: the arm_idle ordering devlib's ``module/cpuidle.py`` manages.
_BL_BIG_CSTATES = make_cstates(
    [("C1", 4.0, 0.0005), ("C2", 1.5, 0.002), ("C3", 0.4, 0.05)]
)
_BL_LITTLE_CSTATES = make_cstates(
    [("C1", 1.0, 0.0005), ("C2", 0.4, 0.002), ("C3", 0.1, 0.05)]
)

_BL_BIG_STATES = make_states([1000, 1400, 1800, 2000], cf=1.0)
_BL_LITTLE_STATES = make_states([600, 1000, 1400], cf=1.0)

#: A 4+4 big.LITTLE server blade (Cortex-A15/A7 class clusters).  The
#: little cluster is listed first — machines fill domains in catalog order
#: at equal efficiency, and the cheap cluster should absorb light load
#: while the big cluster sleeps.  The big cluster alone delivers 60 % of a
#: reference host's capacity, the little one 30 %: the part trades peak
#: capacity for a full-load draw of ~47 W against the i7's 95 W — the
#: efficiency-packing side of the placement trade-off.
BIG_LITTLE_44 = ProcessorSpec(
    name="ARM big.LITTLE 4+4 (A15/A7)",
    states=_BL_BIG_STATES,
    power=PowerModel(idle_watts=10.5, busy_watts=47.0),
    domains=(
        DomainSpec(
            name="little",
            cores=4,
            states=_BL_LITTLE_STATES,
            power=PowerModel(idle_watts=2.5, busy_watts=9.0),
            cstates=_BL_LITTLE_CSTATES,
            capacity_scale=0.30,
        ),
        DomainSpec(
            name="big",
            cores=4,
            states=_BL_BIG_STATES,
            power=PowerModel(idle_watts=8.0, busy_watts=38.0),
            cstates=_BL_BIG_CSTATES,
            capacity_scale=0.60,
        ),
    ),
)

#: All Table 1 machines keyed by the paper's column headers.
TABLE1_PROCESSORS: dict[str, ProcessorSpec] = {
    "Intel Xeon X3440": XEON_X3440,
    "Intel Xeon L5420": XEON_L5420,
    "Intel Xeon E5-2620": XEON_E5_2620,
    "AMD Opteron 6164 HE": OPTERON_6164_HE,
    "Intel Core i7-3770": CORE_I7_3770,
}

#: Every catalog entry by name.
ALL_PROCESSORS: dict[str, ProcessorSpec] = {
    OPTIPLEX_755.name: OPTIPLEX_755,
    **{spec.name: spec for spec in TABLE1_PROCESSORS.values()},
    BIG_LITTLE_44.name: BIG_LITTLE_44,
}


def processor_from_name(name: str) -> ProcessorSpec:
    """The catalog entry called *name*; unknown names list the catalog."""
    try:
        return ALL_PROCESSORS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_PROCESSORS))
        raise ConfigurationError(
            f"unknown processor {name!r}; catalog: {known}"
        ) from None
