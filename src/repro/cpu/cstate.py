"""C-state idle model: per-state power with entry/exit latency.

The homogeneous machine model charges a single idle-watt figure whenever
the package is not executing.  Real silicon exposes a ladder of idle
states (``cpuidle`` in the kernel, ``module/cpuidle.py`` in devlib): each
state powers down more of the core/cluster — lower residency power — but
costs entry and exit latency, so a state only pays off when the idle gap
exceeds its *target residency*.  The governor rule mirrored here is the
kernel menu governor's first-order criterion: pick the deepest state whose
target residency fits the predicted gap, so short idle gaps stay in
shallow states and long ones reach package sleep.

Time spent transitioning (entry + exit) is *not* spent at the state's
residency power; accounting splits each gap into a transition share billed
as shallow (C0) time and a residency share billed at ``power_w``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..units import check_non_negative, check_positive

__all__ = ["CState", "deepest_cstate", "make_cstates"]


@dataclass(frozen=True, slots=True)
class CState:
    """One idle state: residency power plus the latency to reach it.

    ``target_residency_s`` is the break-even gap length (the kernel's
    ``target_residency``): below it, entering the state costs more than it
    saves and the selection rule keeps the core in a shallower state.
    """

    name: str
    #: Power drawn while resident in the state (whole domain).
    power_w: float
    #: Minimum idle-gap length for which entering pays off.
    target_residency_s: float
    #: Time to enter the state (billed as shallow time).
    entry_latency_s: float = 0.0
    #: Time to wake back to C0 (billed as shallow time).
    exit_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a C-state needs a non-empty name")
        check_non_negative(self.power_w, "power_w")
        check_non_negative(self.target_residency_s, "target_residency_s")
        check_non_negative(self.entry_latency_s, "entry_latency_s")
        check_non_negative(self.exit_latency_s, "exit_latency_s")

    @property
    def transition_s(self) -> float:
        """Round-trip latency (entry + exit) in seconds."""
        return self.entry_latency_s + self.exit_latency_s


def make_cstates(entries: Sequence[tuple[str, float, float]]) -> tuple[CState, ...]:
    """Build a C-state ladder from ``(name, power_w, target_residency_s)``.

    Entry/exit latencies default to 10 % of the target residency each — the
    typical order on real parts, and enough that transition time visibly
    erodes barely-qualifying gaps.
    """
    return tuple(
        CState(
            name=name,
            power_w=power_w,
            target_residency_s=target_residency_s,
            entry_latency_s=0.1 * target_residency_s,
            exit_latency_s=0.1 * target_residency_s,
        )
        for name, power_w, target_residency_s in entries
    )


def deepest_cstate(cstates: Sequence[CState], idle_gap_s: float) -> CState | None:
    """The deepest state whose target residency fits *idle_gap_s*.

    Returns ``None`` when no state qualifies (the gap is too short: the
    core stays in C0 at the P-state's shallow idle power).  ``cstates``
    must be ordered ascending by target residency — the catalog convention,
    validated by :class:`~repro.cpu.domains.DomainSpec`.
    """
    check_positive(idle_gap_s, "idle_gap_s")
    chosen: CState | None = None
    for state in cstates:
        if state.target_residency_s <= idle_gap_s:
            chosen = state
        else:
            break
    return chosen
