"""Physical CPU and DVFS substrate (subsystem S2).

This package models the hardware the paper's hypervisor runs on:

* :class:`~repro.cpu.pstate.PState` — one DVFS operating point (frequency,
  voltage, architecture correction factor ``cf``);
* :class:`~repro.cpu.freq_table.FrequencyTable` — the ordered set of P-states
  a processor supports;
* :class:`~repro.cpu.processor.Processor` — the runtime processor: delivers
  ``ratio * cf`` *absolute seconds* of work per wall second (paper Eq. 1/2),
  integrates energy, counts transitions;
* :class:`~repro.cpu.power.PowerModel` — analytic P = f(state, utilisation);
* :class:`~repro.cpu.cpufreq.CpuFreq` — the in-kernel cpufreq subsystem that
  governors drive;
* :mod:`~repro.cpu.catalog` — specs for every machine the paper measures
  (Optiplex 755 Core 2 Duo, the Grid'5000 Xeons/Opteron of Table 1, and the
  HP Elite 8300 i7-3770 of Table 2).
"""

from .pstate import PState
from .freq_table import FrequencyTable
from .power import PowerModel
from .cstate import CState, deepest_cstate, make_cstates
from .domains import DomainSpec, FrequencyDomain
from .processor import Processor, ProcessorSpec
from .cpufreq import CpuFreq
from . import catalog

__all__ = [
    "PState",
    "FrequencyTable",
    "PowerModel",
    "CState",
    "deepest_cstate",
    "make_cstates",
    "DomainSpec",
    "FrequencyDomain",
    "Processor",
    "ProcessorSpec",
    "CpuFreq",
    "catalog",
]
