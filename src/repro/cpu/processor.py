"""The runtime processor model.

A :class:`Processor` is the single physical CPU of the simulated host (the
paper's testbed ran "in single processor mode").  It converts wall-clock time
into *absolute seconds* of delivered work according to the paper's own
performance law (Eq. 1/2):

    work_delivered = dt * ratio_i * cf_i        [absolute seconds]

where ``ratio_i = F_i / F_max`` and ``cf_i`` is the per-P-state correction
factor.  The processor also integrates energy (via a :class:`PowerModel`) and
counts DVFS transitions — the statistics the governor benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigurationError, FrequencyError
from ..units import check_fraction, check_non_negative
from .domains import DomainSpec
from .freq_table import FrequencyTable
from .power import PowerModel
from .pstate import PState


@dataclass(frozen=True)
class ProcessorSpec:
    """Immutable description of a processor model.

    Catalog entries (:mod:`repro.cpu.catalog`) are instances of this class;
    a :class:`Processor` is the mutable runtime object built from one.

    Heterogeneous parts additionally carry ``domains`` — per-cluster
    frequency domains (:class:`~repro.cpu.domains.DomainSpec`, big.LITTLE
    style).  For those parts the top-level ``states``/``power`` mirror the
    performance cluster, so every legacy single-table consumer still works;
    domain-aware consumers (the cluster machine model) branch on
    :attr:`is_heterogeneous`.
    """

    name: str
    states: tuple[PState, ...]
    power: PowerModel = field(default_factory=PowerModel)
    #: DVFS transition latency in seconds (tens of microseconds on real
    #: parts; kept for fidelity and ablation, negligible at default).
    transition_latency: float = 50e-6
    #: Per-cluster frequency domains; empty = homogeneous (every core
    #: scales with the one table above).
    domains: tuple[DomainSpec, ...] = ()

    def table(self) -> FrequencyTable:
        """Build the frequency table for this spec."""
        return FrequencyTable(self.states)

    @property
    def is_heterogeneous(self) -> bool:
        """True when the part has per-cluster frequency domains."""
        return bool(self.domains)

    @property
    def total_cores(self) -> int:
        """Cores across all domains (1 for homogeneous single-table parts)."""
        if self.domains:
            return sum(domain.cores for domain in self.domains)
        return 1

    @property
    def max_freq_mhz(self) -> int:
        """Maximum frequency in MHz."""
        return max(state.freq_mhz for state in self.states)

    @property
    def min_freq_mhz(self) -> int:
        """Minimum frequency in MHz."""
        return min(state.freq_mhz for state in self.states)


class Processor:
    """Mutable runtime processor: current P-state, work, energy, transitions.

    The hypervisor calls :meth:`work_available` to convert a wall-clock slice
    into deliverable absolute work, and :meth:`account` after each slice to
    integrate energy.  Governors change the operating point through
    :meth:`set_frequency` (normally via :class:`~repro.cpu.cpufreq.CpuFreq`).
    """

    def __init__(self, spec: ProcessorSpec) -> None:
        self._spec = spec
        self._table = spec.table()
        self._state = self._table.max_state
        self._transitions = 0
        self._transition_time_total = 0.0
        self._energy_joules = 0.0
        self._busy_seconds = 0.0
        self._elapsed_seconds = 0.0
        self._time_in_state: dict[int, float] = {f: 0.0 for f in self._table.frequencies}
        # Per-state caches for the dispatch hot path.  All three are pure
        # functions of the (immutable) state, so serving them from a cache
        # is bit-identical to recomputing them on every slice boundary.
        max_freq = self._table.max_state.freq_mhz
        self._capacity_cache: dict[int, float] = {
            state.freq_mhz: state.capacity_fraction(max_freq)
            for state in self._table.states
        }
        self._power_cache: dict[tuple[int, float], float] = {
            (state.freq_mhz, util): spec.power.power(state, self._table, util)
            for state in self._table.states
            for util in (0.0, 1.0)
        }
        self._refresh_state_cache()

    def _refresh_state_cache(self) -> None:
        state = self._state
        self._capacity = self._capacity_cache[state.freq_mhz]
        self._power_idle = self._power_cache[(state.freq_mhz, 0.0)]
        self._power_busy = self._power_cache[(state.freq_mhz, 1.0)]

    # ------------------------------------------------------------- identity

    @property
    def spec(self) -> ProcessorSpec:
        """The immutable spec this processor was built from."""
        return self._spec

    @property
    def table(self) -> FrequencyTable:
        """The processor's frequency table."""
        return self._table

    @property
    def state(self) -> PState:
        """Current P-state."""
        return self._state

    @property
    def frequency_mhz(self) -> int:
        """Current frequency in MHz."""
        return self._state.freq_mhz

    @property
    def max_frequency_mhz(self) -> int:
        """Maximum supported frequency in MHz."""
        return self._table.max_state.freq_mhz

    # -------------------------------------------------------------- capacity

    @property
    def ratio(self) -> float:
        """Paper's ``ratio_i = F_i / F_max`` for the current state."""
        return self._state.ratio_to(self.max_frequency_mhz)

    @property
    def cf(self) -> float:
        """Correction factor ``cf_i`` of the current state."""
        return self._state.cf

    @property
    def capacity_fraction(self) -> float:
        """Delivered speed as a fraction of maximum speed (``ratio * cf``)."""
        return self._capacity

    def work_available(self, dt: float) -> float:
        """Absolute seconds of work deliverable in *dt* wall seconds."""
        check_non_negative(dt, "dt")
        return dt * self._capacity

    def wall_time_for(self, work: float) -> float:
        """Wall seconds needed to deliver *work* absolute seconds now."""
        check_non_negative(work, "work")
        return work / self._capacity

    # ------------------------------------------------------------ transitions

    def set_frequency(self, freq_mhz: int) -> bool:
        """Switch to the P-state at *freq_mhz*.

        Returns True when the state actually changed.  Raises
        :class:`FrequencyError` for frequencies not in the table — governors
        must only request table entries (they use the table's own queries).
        """
        new_state = self._table.state_for(freq_mhz)
        if new_state is self._state:
            return False
        self._state = new_state
        self._refresh_state_cache()
        self._transitions += 1
        self._transition_time_total += self._spec.transition_latency
        return True

    @property
    def transitions(self) -> int:
        """Number of completed DVFS transitions."""
        return self._transitions

    @property
    def transition_overhead_seconds(self) -> float:
        """Total time spent switching states (latency * transitions)."""
        return self._transition_time_total

    # --------------------------------------------------------------- account

    def account(self, dt: float, busy_fraction: float) -> float:
        """Integrate *dt* wall seconds at the current state.

        *busy_fraction* is the share of *dt* during which a vCPU was
        dispatched (1.0 for a fully busy slice, 0.0 for idle time).
        Returns the energy consumed over the interval in joules, so the
        caller can attribute it (the host charges it to the running
        domain for per-VM energy accounting).
        """
        if dt == 0.0:
            check_non_negative(dt, "dt")
            return 0.0
        if dt < 0.0:
            check_non_negative(dt, "dt")
        self._elapsed_seconds += dt
        self._busy_seconds += dt * busy_fraction
        self._time_in_state[self._state.freq_mhz] += dt
        # The power model is a pure function of (state, utilisation); the
        # two utilisations the dispatch loop ever bills (fully busy slices,
        # fully idle gaps) are served from the per-state cache.  Energy is
        # ``power * dt`` either way, so the cached path is bit-identical.
        if busy_fraction == 1.0:
            energy = self._power_busy * dt
        elif busy_fraction == 0.0:
            energy = self._power_idle * dt
        else:
            check_fraction(busy_fraction, "busy_fraction")
            energy = self._spec.power.energy(self._state, self._table, busy_fraction, dt)
        self._energy_joules += energy
        return energy

    @property
    def energy_joules(self) -> float:
        """Total energy integrated so far."""
        return self._energy_joules

    @property
    def busy_seconds(self) -> float:
        """Total wall seconds with a vCPU dispatched."""
        return self._busy_seconds

    @property
    def elapsed_seconds(self) -> float:
        """Total wall seconds accounted."""
        return self._elapsed_seconds

    def time_in_state(self, freq_mhz: int) -> float:
        """Wall seconds spent at *freq_mhz*."""
        if freq_mhz not in self._time_in_state:
            raise FrequencyError(f"{freq_mhz} MHz not in table {list(self._table.frequencies)}")
        return self._time_in_state[freq_mhz]

    def residency(self) -> dict[int, float]:
        """Copy of the full time-in-state map (MHz -> seconds)."""
        return dict(self._time_in_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Processor({self._spec.name!r}, {self._state}, "
            f"transitions={self._transitions}, energy={self._energy_joules:.1f}J)"
        )


def make_states(
    freqs_mhz: Sequence[int],
    *,
    cf: Sequence[float] | float = 1.0,
    voltages: Sequence[float] | None = None,
) -> tuple[PState, ...]:
    """Convenience constructor for a tuple of P-states.

    *cf* may be a single value applied everywhere or one value per frequency
    (ascending order).  Voltages default to a linear ramp from 0.85 V at the
    lowest frequency to 1.20 V at the highest, a typical desktop VID range.
    """
    freqs = sorted(freqs_mhz)
    if isinstance(cf, (int, float)):
        cfs = [float(cf)] * len(freqs)
    else:
        cfs = [float(value) for value in cf]
        if len(cfs) != len(freqs):
            raise ConfigurationError(f"got {len(cfs)} cf values for {len(freqs)} frequencies")
    if voltages is None:
        if len(freqs) == 1:
            volts = [1.2]
        else:
            low, high = 0.85, 1.20
            span = freqs[-1] - freqs[0]
            volts = [low + (high - low) * (f - freqs[0]) / span for f in freqs]
    else:
        volts = [float(value) for value in voltages]
        if len(volts) != len(freqs):
            raise ConfigurationError(f"got {len(volts)} voltages for {len(freqs)} frequencies")
    return tuple(
        PState(freq_mhz=f, voltage=v, cf=c) for f, v, c in zip(freqs, volts, cfs)
    )
