"""A single DVFS operating point.

The paper's performance model (Eq. 1/2) says a processor at frequency ``F_i``
behaves like a machine running at the fraction ``ratio_i * cf_i`` of its
maximum-frequency speed, where ``ratio_i = F_i / F_max`` and ``cf_i`` is an
architecture-dependent correction factor close to (but not always equal to)
one — Table 1 measures ``cf_min`` between 0.803 (Xeon E5-2620) and 0.999
(Xeon L5420).  A :class:`PState` carries both numbers plus the core voltage
used by the power model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import check_positive


@dataclass(frozen=True, slots=True)
class PState:
    """One immutable DVFS operating point.

    Parameters
    ----------
    freq_mhz:
        Core frequency in MHz (e.g. 1600).
    voltage:
        Core voltage in volts at this operating point.  Used only by the
        power model; 1.0 is a fine default for experiments that do not
        report energy.
    cf:
        The paper's correction factor ``cf_i`` for this operating point:
        effective speed is ``(freq/freq_max) * cf``.  ``cf = 1`` means
        performance is exactly frequency-proportional; ``cf < 1`` means the
        machine is *slower* than the ratio predicts (memory-bound effects).
    """

    freq_mhz: int
    voltage: float = 1.0
    cf: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.freq_mhz, int):
            raise ConfigurationError(f"freq_mhz must be an int (MHz), got {self.freq_mhz!r}")
        check_positive(self.freq_mhz, "freq_mhz")
        check_positive(self.voltage, "voltage")
        if not 0.0 < self.cf <= 1.5:
            raise ConfigurationError(f"cf must be in (0, 1.5], got {self.cf!r}")

    def ratio_to(self, max_freq_mhz: int) -> float:
        """The paper's ``ratio_i = F_i / F_max`` against *max_freq_mhz*."""
        check_positive(max_freq_mhz, "max_freq_mhz")
        return self.freq_mhz / max_freq_mhz

    def capacity_fraction(self, max_freq_mhz: int) -> float:
        """Effective speed at this P-state as a fraction of maximum speed.

        This is ``ratio_i * cf_i`` — the number the PAS scheduler compares
        against the absolute load (Listing 1.1: ``ratio * 100 * CF[i]``).
        """
        return self.ratio_to(max_freq_mhz) * self.cf

    def __str__(self) -> str:
        return f"{self.freq_mhz} MHz (cf={self.cf:.5f})"
