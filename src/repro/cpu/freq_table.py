"""The ordered set of P-states a processor supports.

Mirrors the kernel's ``scaling_available_frequencies``: an immutable,
ascending-by-frequency table with lookups by exact frequency, neighbours for
conservative (one-step) governors, and the "lowest state that can absorb a
given absolute load" query at the heart of the paper's Listing 1.1.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import ConfigurationError, FrequencyError
from .pstate import PState


class FrequencyTable:
    """Immutable ascending table of :class:`PState` entries.

    >>> table = FrequencyTable([PState(1600), PState(2667)])
    >>> table.min_state.freq_mhz, table.max_state.freq_mhz
    (1600, 2667)
    """

    def __init__(self, states: Sequence[PState]) -> None:
        if not states:
            raise ConfigurationError("a frequency table needs at least one P-state")
        ordered = sorted(states, key=lambda state: state.freq_mhz)
        freqs = [state.freq_mhz for state in ordered]
        if len(set(freqs)) != len(freqs):
            raise ConfigurationError(f"duplicate frequencies in table: {freqs}")
        self._states: tuple[PState, ...] = tuple(ordered)
        self._by_freq = {state.freq_mhz: state for state in ordered}

    # ------------------------------------------------------------- accessors

    @property
    def states(self) -> tuple[PState, ...]:
        """All P-states, ascending by frequency."""
        return self._states

    @property
    def min_state(self) -> PState:
        """The lowest-frequency P-state."""
        return self._states[0]

    @property
    def max_state(self) -> PState:
        """The highest-frequency P-state."""
        return self._states[-1]

    @property
    def frequencies(self) -> tuple[int, ...]:
        """All frequencies in MHz, ascending."""
        return tuple(state.freq_mhz for state in self._states)

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[PState]:
        return iter(self._states)

    def __contains__(self, freq_mhz: int) -> bool:
        return freq_mhz in self._by_freq

    # --------------------------------------------------------------- lookups

    def state_for(self, freq_mhz: int) -> PState:
        """The P-state at exactly *freq_mhz*, or raise :class:`FrequencyError`."""
        try:
            return self._by_freq[freq_mhz]
        except KeyError:
            raise FrequencyError(
                f"{freq_mhz} MHz is not in the table {list(self.frequencies)}"
            ) from None

    def index_of(self, freq_mhz: int) -> int:
        """Position of *freq_mhz* in the ascending table."""
        state = self.state_for(freq_mhz)
        return self._states.index(state)

    def clamp(self, freq_mhz: int) -> PState:
        """The lowest P-state with frequency >= *freq_mhz* (max state if none)."""
        for state in self._states:
            if state.freq_mhz >= freq_mhz:
                return state
        return self.max_state

    def clamp_down(self, freq_mhz: int) -> PState:
        """The highest P-state with frequency <= *freq_mhz* (min state if none)."""
        for state in reversed(self._states):
            if state.freq_mhz <= freq_mhz:
                return state
        return self.min_state

    def step_up(self, freq_mhz: int) -> PState:
        """One P-state above *freq_mhz* (saturates at the top)."""
        index = self.index_of(freq_mhz)
        return self._states[min(index + 1, len(self._states) - 1)]

    def step_down(self, freq_mhz: int) -> PState:
        """One P-state below *freq_mhz* (saturates at the bottom)."""
        index = self.index_of(freq_mhz)
        return self._states[max(index - 1, 0)]

    def capacity_fraction(self, freq_mhz: int) -> float:
        """``ratio * cf`` of the state at *freq_mhz* (fraction of max speed)."""
        return self.state_for(freq_mhz).capacity_fraction(self.max_state.freq_mhz)

    def lowest_absorbing(self, absolute_load_percent: float, *, margin_percent: float = 0.0) -> PState:
        """Paper Listing 1.1: the lowest P-state whose capacity absorbs a load.

        Iterates ascending and returns the first state with
        ``ratio * 100 * cf > absolute_load_percent + margin_percent``; the maximum
        state if none qualifies.  *margin_percent* (percentage points) implements the
        head-room used by hysteretic governors.
        """
        for state in self._states:
            capacity_percent = state.capacity_fraction(self.max_state.freq_mhz) * 100.0
            if capacity_percent > absolute_load_percent + margin_percent:
                return state
        return self.max_state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrequencyTable({list(self.frequencies)})"
