"""Hypervisor substrate (subsystem S4).

The simulated equivalent of the Xen hypervisor the paper modifies:

* :class:`~repro.hypervisor.vcpu.VCpu` — a virtual CPU with a demand queue
  measured in absolute seconds;
* :class:`~repro.hypervisor.domain.Domain` — a VM (or Dom0) with its SLA
  credit, scheduler parameters and attached workload;
* :class:`~repro.hypervisor.host.Host` — the machine: engine + processor +
  cpufreq + one VM scheduler + domains, running a slice-based dispatch loop;
* :class:`~repro.hypervisor.load_monitor.LoadMonitor` — per-domain and
  host-wide load sampling with the paper's 3-sample averaging.
"""

from .vcpu import VCpu, VCpuState
from .domain import Domain, DomainConfig
from .host import Host
from .load_monitor import LoadMonitor

__all__ = ["VCpu", "VCpuState", "Domain", "DomainConfig", "Host", "LoadMonitor"]
