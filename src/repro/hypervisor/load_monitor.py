"""Per-domain and host-wide load sampling.

Implements the measurement vocabulary of §4.2:

* ``VM global load`` — the domain's contribution to processor load: its
  dispatched wall-time over the sampling window, in percent;
* ``VM load`` — the domain's load relative to its *allocated credit*
  (``VM_global_load = VM_load * VM_credit`` in the paper's notation);
* ``Global load`` — the sum over domains (equivalently the processor's busy
  fraction);
* ``Absolute load`` — ``Global_load * (CurrentFreq / Freq[max]) * cf`` —
  what the same demand would load the processor at full speed;
* per-domain ``absolute load`` — the domain's global load scaled the same
  way (Figs. 5/7/10 plot exactly this).

Samples land in a :class:`~repro.telemetry.Recorder` under
``{domain}.global_load``, ``{domain}.vm_load``, ``{domain}.absolute_load``,
``host.global_load``, ``host.absolute_load``, ``host.freq_mhz``,
``host.power_w`` and ``host.energy_j``.  Raw samples are stored; the paper's
3-sample averaging is applied at read time (:func:`repro.telemetry.rolling_mean`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import PeriodicTimer
from ..telemetry import Recorder
from ..units import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .host import Host


class LoadMonitor:
    """Samples domain and host loads every *period* seconds (default 1 s)."""

    def __init__(self, host: "Host", recorder: Recorder, *, period: float = 1.0) -> None:
        self._host = host
        self._recorder = recorder
        self._period = check_positive(period, "period")
        self._timer = PeriodicTimer(
            host.engine, self._period, self._sample, label="load-monitor"
        )
        self._last_cpu_seconds: dict[str, float] = {}
        self._last_energy = 0.0

    @property
    def period(self) -> float:
        """Sampling period in seconds."""
        return self._period

    def start(self) -> None:
        """Begin sampling (aligned to multiples of the period)."""
        for domain in self._host.domains:
            self._last_cpu_seconds[domain.name] = domain.cpu_seconds
        self._last_energy = self._host.processor.energy_joules
        self._timer.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    # ------------------------------------------------------------ internals

    def _sample(self, now: float) -> None:
        # The host accounts lazily (at slice boundaries), so force the books
        # up to date before reading counters.
        self._host.sync_accounting()
        processor = self._host.processor
        scale = processor.ratio * processor.cf

        total_global = 0.0
        for domain in self._host.domains:
            used = domain.cpu_seconds
            last = self._last_cpu_seconds.get(domain.name, 0.0)
            self._last_cpu_seconds[domain.name] = used
            global_load = 100.0 * (used - last) / self._period
            global_load = max(0.0, min(100.0, global_load))
            total_global += global_load
            prefix = domain.name
            self._recorder.record(f"{prefix}.global_load", now, global_load)
            self._recorder.record(f"{prefix}.absolute_load", now, global_load * scale)
            if domain.credit > 0:
                vm_load = 100.0 * global_load / domain.credit
                self._recorder.record(f"{prefix}.vm_load", now, vm_load)

        total_global = min(100.0, total_global)
        energy = processor.energy_joules
        self._recorder.record("host.global_load", now, total_global)
        self._recorder.record("host.absolute_load", now, total_global * scale)
        self._recorder.record("host.freq_mhz", now, float(processor.frequency_mhz))
        self._recorder.record("host.power_w", now, (energy - self._last_energy) / self._period)
        self._recorder.record("host.energy_j", now, energy)
        self._last_energy = energy
