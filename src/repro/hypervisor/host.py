"""The simulated physical machine.

A :class:`Host` wires together the engine, one processor, the cpufreq
subsystem with its governor, one VM scheduler, the domains and telemetry —
the same composition as a Xen box (§2).  It runs a slice-based dispatch loop:

* the scheduler picks a vCPU; the host runs it for
  ``min(policy slice, time to drain its demand)`` wall seconds;
* wall time converts to work at the processor's current ``ratio * cf`` —
  the paper's Eq. 1/2 is the substrate's definition of DVFS;
* P-state changes, wake-time preemptions and scheduler ticks all end the
  in-flight slice early (work accrual assumes constant capacity per slice);
* accounting is lazy: counters are brought up to date at slice boundaries
  and on :meth:`sync_accounting` (the load monitor forces this each sample).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..cpu import CpuFreq, Processor, ProcessorSpec, catalog
from ..errors import ConfigurationError, SchedulerError
from ..governors import Governor, make_governor
from ..obs import hooks as _obs
from ..sim import Engine, EventHandle, PeriodicTimer, RngStreams
from ..telemetry import Recorder
from .domain import DOM0_CLASS, Domain, DomainConfig, GUEST_CLASS
from .load_monitor import LoadMonitor
from .vcpu import VCpu, WORK_EPSILON

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..schedulers.base import Scheduler


class Host:
    """A single-pCPU virtualized host.

    Parameters
    ----------
    processor:
        A :class:`ProcessorSpec` from :mod:`repro.cpu.catalog` (default: the
        paper's Optiplex 755 testbed).
    scheduler:
        A :class:`~repro.schedulers.base.Scheduler` instance or a registry
        name (``"credit"``, ``"sedf"``, ``"credit2"``, ``"pas"``).
    governor:
        A :class:`~repro.governors.base.Governor` instance or a registry name
        (``"performance"``, ``"powersave"``, ``"userspace"``, ``"ondemand"``,
        ``"conservative"``, ``"stable"``).
    monitor_period:
        Load-monitor sampling period in seconds (paper-scale: 1 s).
    seed:
        Root seed for every random stream in the run.
    """

    def __init__(
        self,
        *,
        processor: ProcessorSpec = catalog.OPTIPLEX_755,
        scheduler: "Scheduler | str" = "credit",
        governor: Governor | str = "performance",
        monitor_period: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.engine = Engine()
        self.processor = Processor(processor)
        self.cpufreq = CpuFreq(self.engine, self.processor)
        self.recorder = Recorder()
        self.rng = RngStreams(seed)

        if isinstance(scheduler, str):
            from ..schedulers.registry import make_scheduler

            scheduler = make_scheduler(scheduler)
        self.scheduler: "Scheduler" = scheduler
        self.scheduler.attach(self)

        if isinstance(governor, str):
            governor = make_governor(governor)
        self.governor: Governor = governor

        self._domains: dict[str, Domain] = {}
        #: Precomputed per-vCPU slice-event labels (f-strings per dispatch
        #: are measurable at 10^5 slices per run).
        self._slice_labels: dict[str, str] = {}
        self._monitor = LoadMonitor(self, self.recorder, period=monitor_period)

        # Dispatch-loop state: exactly one of (_current, _idle_from) is set.
        self._current: VCpu | None = None
        self._slice_start = 0.0
        self._slice_capacity = 1.0
        self._slice_end_event: EventHandle | None = None
        self._idle_from: float | None = 0.0
        self._tick_timer: PeriodicTimer | None = None
        self._started = False
        self._preemptions = 0
        #: Per-domain energy attribution (joules charged while dispatched).
        self._domain_energy: dict[str, float] = {}
        self._idle_energy = 0.0

        self.cpufreq.add_pre_observer(self._before_frequency_change)
        self.cpufreq.add_observer(self._on_frequency_change)

    # -------------------------------------------------------------- domains

    @property
    def domains(self) -> list[Domain]:
        """All domains in creation order."""
        return list(self._domains.values())

    def domain(self, name: str) -> Domain:
        """The domain called *name*."""
        try:
            return self._domains[name]
        except KeyError:
            known = ", ".join(self._domains) or "<none>"
            raise ConfigurationError(f"no domain {name!r}; have: {known}") from None

    def create_domain(
        self,
        name: str,
        credit: float,
        *,
        weight: float | None = None,
        cap: float | None = None,
        dom0: bool = False,
        sedf_period: float = 0.1,
        sedf_extra: bool = False,
    ) -> Domain:
        """Create a domain with *credit* percent of max-frequency capacity.

        The fix-credit defaults apply (weight = credit, cap = credit, null
        credit uncapped); keyword arguments override them.  ``dom0=True``
        puts the domain in the highest priority class (§5.3).
        """
        if name in self._domains:
            raise ConfigurationError(f"duplicate domain name {name!r}")
        if self._started:
            raise ConfigurationError("cannot add domains after the host has started")
        config = DomainConfig(
            credit=credit,
            weight=weight,
            cap=cap,
            priority_class=DOM0_CLASS if dom0 else GUEST_CLASS,
            sedf_period=sedf_period,
            sedf_extra=sedf_extra,
        )
        domain = Domain(name, config, self)
        self._domains[name] = domain
        self._slice_labels[name] = f"slice.{name}"
        self.scheduler.add_vcpu(domain.vcpu)
        return domain

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Install the governor, start timers and attached workloads."""
        if self._started:
            raise ConfigurationError("host already started")
        self._started = True
        self.cpufreq.set_governor(self.governor)
        if self.scheduler.tick_period is not None:
            self._tick_timer = PeriodicTimer(
                self.engine,
                self.scheduler.tick_period,
                self._on_scheduler_tick,
                label=f"sched.{self.scheduler.name}",
            )
            self._tick_timer.start()
        self._monitor.start()
        for domain in self._domains.values():
            for workload in domain.workloads:
                workload.start()

    def run(self, until: float) -> None:
        """Advance the simulation to absolute time *until* (auto-starts)."""
        if not self._started:
            self.start()
        self.engine.run_until(until)
        self.sync_accounting()

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.engine.now

    @property
    def preemptions(self) -> int:
        """Number of slices ended early by wake/DVFS/tick preemption."""
        return self._preemptions

    # -------------------------------------------------- dispatch-loop inputs

    def on_vcpu_wake(self, vcpu: VCpu) -> None:
        """A blocked vCPU acquired demand (called by its domain)."""
        self.scheduler.wake(vcpu)
        if self._current is None:
            self._begin_dispatch()
        elif self.scheduler.should_preempt(self._current, vcpu):
            self._preemptions += 1
            trace = _obs.TRACER
            if trace is not None:
                trace.sched_preempt(self.engine.now, self._current.name, "wake")
            self._end_current_slice()
            self._begin_dispatch()

    def _on_scheduler_tick(self, now: float) -> None:
        # Fold the in-flight slice into the books *before* the scheduler's
        # bookkeeping: Xen debits the running vCPU at every tick, and a
        # credit-accounting reset must see usage accrued in the period it
        # closes, not have a whole slice charged into the fresh period.
        self.sync_accounting()
        if self.scheduler.tick(now):
            if self._current is not None:
                self._preemptions += 1
                trace = _obs.TRACER
                if trace is not None:
                    trace.sched_preempt(now, self._current.name, "tick")
                self._end_current_slice()
            self._begin_dispatch()

    def _before_frequency_change(self, freq_mhz: int) -> None:
        # Fold the in-flight slice prefix (or idle gap) into the books while
        # the outgoing P-state is still current: the prefix ran at the old
        # state's capacity *and* the old state's wattage, so billing it
        # after the flip would charge it at the wrong power and log it in
        # the wrong time-in-state bucket.
        self.sync_accounting()

    def _on_frequency_change(self, freq_mhz: int) -> None:
        # Work accrues at a constant capacity per slice; a P-state change
        # invalidates that, so end the slice and re-dispatch at the new rate.
        # A change that lands on the same effective capacity (two states with
        # equal ratio * cf) leaves the in-flight slice's accounting valid, so
        # it is not a preemption.
        if self._current is not None and self.processor.capacity_fraction != self._slice_capacity:
            self._preemptions += 1
            trace = _obs.TRACER
            if trace is not None:
                trace.sched_preempt(self.engine.now, self._current.name, "dvfs")
            self._end_current_slice()
            self._begin_dispatch()

    # ---------------------------------------------------- dispatch machinery

    def _begin_dispatch(self) -> None:
        if self._current is not None:
            raise SchedulerError("dispatch while a vCPU is running")
        engine = self.engine
        now = engine.now
        idle_from = self._idle_from
        if idle_from is not None:
            gap = now - idle_from
            if gap > 0:
                self._idle_energy += self.processor.account(gap, 0.0)
            self._idle_from = None
        vcpu = self.scheduler.pick_next(now)
        trace = _obs.TRACER
        if vcpu is None:
            if trace is not None:
                trace.sched_pick(now, None, 0.0)
            self._idle_from = now
            return
        slice_len = self.scheduler.slice_for(vcpu, now)
        if slice_len <= 0:
            raise SchedulerError(
                f"scheduler {self.scheduler.name!r} returned a non-positive slice "
                f"({slice_len}) for {vcpu.name!r}"
            )
        capacity = self.processor._capacity
        drain = vcpu._pending_work / capacity
        run_for = drain if drain < slice_len else slice_len
        if trace is not None:
            trace.sched_pick(now, vcpu.name, run_for)
        vcpu.mark_running()
        self._current = vcpu
        self._slice_start = now
        self._slice_capacity = capacity
        self._slice_end_event = engine.schedule(
            run_for, self._on_slice_end, label=self._slice_labels[vcpu.name]
        )

    def _on_slice_end(self) -> None:
        self._end_current_slice()
        self._begin_dispatch()

    def _end_current_slice(self) -> None:
        vcpu = self._current
        if vcpu is None:
            raise SchedulerError("ending a slice while idle")
        now = self.engine.now
        event = self._slice_end_event
        if event is not None:
            self._slice_end_event = None
            if event.callback is None:
                # Natural slice end: the engine popped and fired this handle
                # and only we still reference it — pool it for the next
                # slice.  One dispatch per slice makes this the hottest
                # allocation in a run after the timer handles PR 5 already
                # recycles.
                self.engine.release(event)
            else:
                # Preempted: the handle is still in the heap, so it can only
                # be tombstoned — the pop loop discards it.
                event._cancelled = True
        self._current = None
        elapsed = now - self._slice_start
        scheduler = self.scheduler
        if elapsed > 0:
            trace = _obs.TRACER
            if trace is not None:
                trace.sched_slice(vcpu.name, self._slice_start, elapsed)
            work = elapsed * self._slice_capacity
            vcpu.consume(work, elapsed)
            energy = self.processor.account(elapsed, 1.0)
            name = vcpu.name
            domain_energy = self._domain_energy
            domain_energy[name] = domain_energy.get(name, 0.0) + energy
            scheduler.charge(vcpu, elapsed, now)
        if vcpu._pending_work > WORK_EPSILON:
            vcpu.mark_runnable()
            scheduler.put_back(vcpu)
        else:
            vcpu.mark_blocked()
            scheduler.sleep(vcpu)
            vcpu.domain.notify_idle(now)

    def kick(self) -> None:
        """Re-evaluate scheduling if the processor is idle.

        External policy changes (a user-level manager raising a cap, say) can
        make a parked vCPU runnable while nothing else would trigger a
        dispatch; this forces one.  A no-op while a slice is in flight — the
        next tick rebalances.
        """
        if self._current is None and self._started:
            self._begin_dispatch()

    # ------------------------------------------------------------ accounting

    def sync_accounting(self) -> None:
        """Bring work/energy/charge counters up to the current instant.

        Accounting is lazy (slice-boundary); samplers call this first so the
        books reflect any in-flight slice or idle gap.  The in-flight slice
        keeps running — only its consumed prefix is folded in.
        """
        current = self._current
        if current is not None:
            now = self.engine._now
            elapsed = now - self._slice_start
            if elapsed > 0:
                work = elapsed * self._slice_capacity
                current.consume(work, elapsed)
                energy = self.processor.account(elapsed, 1.0)
                name = current.name
                domain_energy = self._domain_energy
                domain_energy[name] = domain_energy.get(name, 0.0) + energy
                self.scheduler.charge(current, elapsed, now)
                self._slice_start = now
        else:
            idle_from = self._idle_from
            if idle_from is not None:
                now = self.engine._now
                gap = now - idle_from
                if gap > 0:
                    self._idle_energy += self.processor.account(gap, 0.0)
                self._idle_from = now

    # -------------------------------------------------- energy attribution

    def domain_energy_joules(self, name: str) -> float:
        """Energy charged to domain *name* while dispatched (charge-back).

        Attribution is at-the-meter: each slice's package energy (at the
        P-state and utilisation it ran under) goes to the domain that was
        running.  Idle-time energy is the provider's overhead
        (:attr:`idle_energy_joules`); the three always sum to the
        processor's total.
        """
        self.domain(name)  # validate the name
        return self._domain_energy.get(name, 0.0)

    @property
    def idle_energy_joules(self) -> float:
        """Energy burnt while no vCPU was dispatched (provider overhead)."""
        return self._idle_energy

    # ------------------------------------------------------------ shorthand

    @property
    def absolute_load_scale(self) -> float:
        """Current ``ratio * cf`` — multiply a nominal load to get absolute."""
        return self.processor.ratio * self.processor.cf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self._current.name if self._current else "idle"
        return (
            f"Host({self.processor.spec.name!r}, sched={self.scheduler.name}, "
            f"gov={self.governor.name}, t={self.engine.now:.2f}, running={running})"
        )
