"""Domains (VMs and Dom0).

A :class:`Domain` bundles the SLA the customer bought (the *credit*: a
percentage of the host's maximum-frequency capacity), the scheduler
parameters derived from it, one vCPU, and an optional workload.  Dom0 is an
ordinary domain in a higher priority class (§5.3: "the Dom0 ... is configured
with the highest priority in the VM scheduler").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..errors import ConfigurationError
from ..units import check_non_negative
from .vcpu import VCpu

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.base import Workload
    from .host import Host

#: Priority class of Dom0 (picked before any guest class).
DOM0_CLASS = 0
#: Priority class of ordinary guests.
GUEST_CLASS = 1


@dataclass(frozen=True)
class DomainConfig:
    """Scheduler-facing configuration of a domain.

    Parameters
    ----------
    credit:
        The SLA in percent of maximum-frequency capacity.  ``0`` reproduces
        Xen's null-credit exception: no guaranteed share, no cap (§3.1).
    weight:
        Relative share under contention.  Defaults to the credit (so shares
        are proportional to what customers bought); null-credit domains
        default to a scavenger weight of 1 — per §3.1 they may only "use
        any CPU time slices that are not used by other VMs", so they must
        not out-weigh paying VMs.
    cap:
        Hard ceiling in nominal percent.  ``None`` derives the fix-credit
        default (cap = credit, or uncapped when credit is 0).
    priority_class:
        ``DOM0_CLASS`` or ``GUEST_CLASS``; lower runs first.
    sedf_period:
        SEDF period *p* in seconds; the slice is ``credit/100 * p``.
    sedf_extra:
        SEDF's boolean *b* flag: eligible for unused time slices
        (variable-credit behaviour).
    """

    credit: float
    weight: float | None = None
    cap: float | None = None
    priority_class: int = GUEST_CLASS
    sedf_period: float = 0.1
    sedf_extra: bool = False

    def __post_init__(self) -> None:
        check_non_negative(self.credit, "credit")
        if self.credit > 100.0:
            raise ConfigurationError(f"credit must be <= 100, got {self.credit}")
        if self.weight is not None:
            check_non_negative(self.weight, "weight")
        if self.cap is not None:
            check_non_negative(self.cap, "cap")
        if self.priority_class not in (DOM0_CLASS, GUEST_CLASS):
            raise ConfigurationError(f"unknown priority class {self.priority_class}")
        check_non_negative(self.sedf_period, "sedf_period")

    @property
    def effective_weight(self) -> float:
        """Weight used by proportional-share schedulers."""
        if self.weight is not None:
            return self.weight
        return self.credit if self.credit > 0 else 1.0

    @property
    def effective_cap(self) -> float:
        """Cap in nominal percent; 0 means *uncapped* (Xen convention)."""
        if self.cap is not None:
            return self.cap
        return self.credit  # credit 0 -> cap 0 -> uncapped, per the paper


class Domain:
    """A VM: identity + SLA + vCPU + workload attachment point."""

    def __init__(self, name: str, config: DomainConfig, host: "Host") -> None:
        if not name:
            raise ConfigurationError("domain name must be non-empty")
        self._name = name
        self._config = config
        self._host = host
        self._vcpu = VCpu(self)
        self._workloads: list["Workload"] = []
        #: Callbacks fired when the vCPU drains its queue (blocks).
        self._idle_callbacks: list[Callable[[float], None]] = []

    # ------------------------------------------------------------- identity

    @property
    def name(self) -> str:
        """Domain name (unique per host)."""
        return self._name

    @property
    def config(self) -> DomainConfig:
        """Scheduler-facing configuration."""
        return self._config

    @property
    def credit(self) -> float:
        """The initially allocated credit — the SLA (percent of max capacity)."""
        return self._config.credit

    @property
    def vcpu(self) -> VCpu:
        """This domain's (single) vCPU."""
        return self._vcpu

    @property
    def host(self) -> "Host":
        """The host this domain runs on."""
        return self._host

    @property
    def is_dom0(self) -> bool:
        """True for the control domain."""
        return self._config.priority_class == DOM0_CLASS

    # ------------------------------------------------------------- workload

    @property
    def workload(self) -> "Workload | None":
        """The first attached workload, if any (single-workload shorthand)."""
        return self._workloads[0] if self._workloads else None

    @property
    def workloads(self) -> tuple["Workload", ...]:
        """All attached workloads, in attach order."""
        return tuple(self._workloads)

    def attach_workload(self, workload: "Workload") -> None:
        """Attach *workload*; a domain may run several (demand adds up)."""
        workload.bind(self)
        self._workloads.append(workload)

    # ----------------------------------------------------------------- work

    def add_work(self, work: float) -> None:
        """Queue demand on the vCPU and wake it if it was blocked."""
        was_blocked = not self._vcpu.runnable
        self._vcpu.add_work(work)
        if was_blocked and self._vcpu.has_work:
            self._vcpu.mark_runnable()
            self._host.on_vcpu_wake(self._vcpu)

    def on_idle(self, callback: Callable[[float], None]) -> None:
        """Register *callback(now)* for each queue-drained transition."""
        self._idle_callbacks.append(callback)

    def notify_idle(self, now: float) -> None:
        """Host: the vCPU just blocked (drained its queue)."""
        for callback in self._idle_callbacks:
            callback(now)

    # ------------------------------------------------------------ statistics

    @property
    def cpu_seconds(self) -> float:
        """Wall seconds of processor time received so far."""
        return self._vcpu.cpu_seconds

    @property
    def work_done(self) -> float:
        """Absolute seconds of work completed so far."""
        return self._vcpu.work_done

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({self._name!r}, credit={self.credit}%, {self._vcpu.state.value})"
