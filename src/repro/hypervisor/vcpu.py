"""Virtual CPUs.

A :class:`VCpu` carries the demand of one domain: a queue of *pending work*
in absolute seconds (max-frequency CPU-seconds).  Workloads push work in;
the host drains it while the vCPU is dispatched, at the processor's current
``ratio * cf`` rate.  A vCPU with no pending work is *blocked* — exactly the
distinction the paper draws between active and lazy VMs.

The class is slotted and keeps its hot fields (state, pending work, the
owning domain's name) as plain attributes: the dispatch loop touches every
one of them on every slice boundary, so property indirection here is pure
overhead.  The public read API is unchanged.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from ..errors import SchedulerError
from ..units import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .domain import Domain

#: Pending work below this threshold counts as drained (guards float fuzz
#: from repeated consume() subtractions; 1e-9 absolute seconds ~ one
#: nanosecond of max-frequency CPU, far below any slice length).
WORK_EPSILON = 1e-9


class VCpuState(enum.Enum):
    """Lifecycle of a vCPU from the scheduler's point of view."""

    BLOCKED = "blocked"
    RUNNABLE = "runnable"
    RUNNING = "running"


class VCpu:
    """One virtual CPU belonging to one domain.

    The host mutates state through :meth:`mark_running` /
    :meth:`mark_runnable` / :meth:`mark_blocked`; schedulers only read it.
    """

    __slots__ = (
        "_domain",
        "name",
        "_state",
        "runnable",
        "_pending_work",
        "_cpu_seconds",
        "_work_done",
        "_dispatch_count",
    )

    def __init__(self, domain: "Domain") -> None:
        self._domain = domain
        #: The owning domain's name (vCPUs are 1:1 with domains here).
        self.name: str = domain.name
        self._state = VCpuState.BLOCKED
        #: True when the vCPU could be dispatched (RUNNABLE or RUNNING).
        self.runnable: bool = False
        self._pending_work = 0.0
        self._cpu_seconds = 0.0
        self._work_done = 0.0
        self._dispatch_count = 0

    # ------------------------------------------------------------- identity

    @property
    def domain(self) -> "Domain":
        """The owning domain."""
        return self._domain

    # ---------------------------------------------------------------- state

    @property
    def state(self) -> VCpuState:
        """Current lifecycle state."""
        return self._state

    def mark_running(self) -> None:
        """Host: the vCPU was just dispatched."""
        if self._state is VCpuState.BLOCKED:
            raise SchedulerError(f"cannot dispatch blocked vCPU {self.name!r}")
        self._state = VCpuState.RUNNING
        self._dispatch_count += 1

    def mark_runnable(self) -> None:
        """Host: the vCPU has demand and waits for the processor."""
        self._state = VCpuState.RUNNABLE
        self.runnable = True

    def mark_blocked(self) -> None:
        """Host: the vCPU drained its demand queue."""
        self._state = VCpuState.BLOCKED
        self.runnable = False

    # ----------------------------------------------------------------- work

    @property
    def pending_work(self) -> float:
        """Queued demand in absolute seconds."""
        return self._pending_work

    @property
    def has_work(self) -> bool:
        """True when meaningful demand remains (beyond float fuzz)."""
        return self._pending_work > WORK_EPSILON

    def add_work(self, work: float) -> None:
        """Queue *work* absolute seconds of demand (workload-facing)."""
        check_non_negative(work, "work")
        self._pending_work += work

    def consume(self, work: float, wall_dt: float) -> None:
        """Host: account *work* done over *wall_dt* seconds of dispatch.

        Clamps the residual at zero — the host computes slice lengths from
        pending work, so any negative residual is float fuzz by construction.
        """
        if work < 0.0:
            check_non_negative(work, "work")
        if wall_dt < 0.0:
            check_non_negative(wall_dt, "wall_dt")
        pending = self._pending_work - work
        self._pending_work = pending if pending >= WORK_EPSILON else 0.0
        self._work_done += work
        self._cpu_seconds += wall_dt

    # ------------------------------------------------------------ statistics

    @property
    def cpu_seconds(self) -> float:
        """Cumulative wall seconds this vCPU has been dispatched."""
        return self._cpu_seconds

    @property
    def work_done(self) -> float:
        """Cumulative absolute seconds of work completed."""
        return self._work_done

    @property
    def dispatch_count(self) -> int:
        """Number of times the vCPU has been put on the processor."""
        return self._dispatch_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VCpu({self.name!r}, {self._state.value}, "
            f"pending={self._pending_work:.4f}, done={self._work_done:.2f})"
        )
