"""Discrete-event simulation kernel (subsystem S1).

A small, deterministic event engine: a time-ordered heap of callbacks with
FIFO tie-breaking, periodic timers built on top of it, and named seeded RNG
streams so independent components draw independent but reproducible samples.

The rest of the library never touches wall-clock time; everything is driven
through :class:`~repro.sim.engine.Engine`.
"""

from .engine import Engine
from .events import EventHandle
from .timers import PeriodicTimer
from .rng import RngStreams

__all__ = ["Engine", "EventHandle", "PeriodicTimer", "RngStreams"]
