"""Scheduled-event bookkeeping for the simulation engine.

An :class:`EventHandle` is what :meth:`Engine.schedule` returns.  Handles can
be cancelled (O(1) — the heap entry is tombstoned and skipped on pop) and
inspected for their due time, which the hypervisor uses to preempt pending
end-of-slice events when a higher-priority vCPU wakes.

The handle is deliberately *not* the heap entry: the engine's heap holds
``(time, sequence, handle)`` tuples so ordering is resolved by C-level
tuple comparison on ``(time, sequence)`` alone — the hot loop never calls
back into Python to compare two events.
"""

from __future__ import annotations

from typing import Callable


class EventHandle:
    """A pending callback in the engine's event heap.

    Ordering is ``(time, sequence)``: events at the same simulated time fire
    in the order they were scheduled, which keeps runs deterministic.
    """

    __slots__ = ("time", "sequence", "callback", "label", "_cancelled")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        #: Human-readable tag; also the event's name in ``engine``-category
        #: trace output (:class:`repro.obs.trace.Tracer`), so stable labels
        #: like ``"slice.web1"`` group meaningfully in Perfetto.
        self.label = label
        self._cancelled = False

    def cancel(self) -> None:
        """Tombstone this event; the engine will skip it when popped."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True when :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event is neither cancelled nor fired.

        Firing is represented by ``callback`` being cleared to None (the
        engine and timers do this inline when they dispatch the event).
        """
        return not self._cancelled and self.callback is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.sequence}, {self.label!r}, {state})"
