"""Scheduled-event bookkeeping for the simulation engine.

An :class:`EventHandle` is what :meth:`Engine.schedule` returns.  Handles can
be cancelled (O(1) — the heap entry is tombstoned and skipped on pop) and
inspected for their due time, which the hypervisor uses to preempt pending
end-of-slice events when a higher-priority vCPU wakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class EventHandle:
    """A pending callback in the engine's event heap.

    Ordering is ``(time, sequence)``: events at the same simulated time fire
    in the order they were scheduled, which keeps runs deterministic.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    #: Human-readable tag for debugging and engine introspection.
    label: str = field(default="", compare=False)
    _cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Tombstone this event; the engine will skip it when popped."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True when :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event is neither cancelled nor fired."""
        return not self._cancelled and self.callback is not None

    def _mark_fired(self) -> None:
        self.callback = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.sequence}, {self.label!r}, {state})"
