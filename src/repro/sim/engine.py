"""The discrete-event engine.

The engine owns simulated time.  Components schedule callbacks at absolute or
relative times; :meth:`Engine.run_until` pops them in ``(time, sequence)``
order so that same-time events fire first-scheduled-first — this FIFO
tie-break is what makes whole-system runs bit-reproducible.

The engine deliberately has no notion of processes or coroutines: the
hypervisor, governors and workloads are all callback-driven, which keeps the
hot loop small and the control flow explicit.  The heap holds
``(time, sequence, handle)`` tuples rather than handle objects, so event
ordering is a C-level tuple comparison (``sequence`` is unique, so the
handle itself is never compared), and the :meth:`run_until` loop pops and
dispatches without any per-event Python-level indirection beyond the
callback itself — at 10^5-10^6 events per simulated scenario this loop is
the floor under every sweep's wall time.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator

from ..errors import SimulationError
from ..obs import hooks as _obs
from .events import EventHandle


class Engine:
    """A deterministic discrete-event loop.

    Example
    -------
    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule(1.5, lambda: fired.append(engine.now))
    >>> engine.run_until(2.0)
    >>> fired
    [1.5]
    """

    __slots__ = (
        "_now",
        "_sequence",
        "_heap",
        "_events_fired",
        "_running",
        "_free",
        "_heap_peak",
        "_free_reuse",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._events_fired = 0
        self._running = False
        self._free: list[EventHandle] = []
        self._heap_peak = 0
        self._free_reuse = 0

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_fired

    @property
    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the heap."""
        return sum(1 for _, _, handle in self._heap if not handle._cancelled)

    @property
    def heap_peak(self) -> int:
        """High-water mark of the event heap (tombstones included).

        Maintained at schedule time only, so it is free on the pop side;
        :meth:`~repro.sim.timers.PeriodicTimer._fire`'s inlined re-arm is
        pop-then-push neutral and cannot move the peak.
        """
        return self._heap_peak

    @property
    def free_list_reuse(self) -> int:
        """Schedules served by re-stamping a pooled handle (vs allocating)."""
        return self._free_reuse

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: float, callback: Callable[[], None], *, label: str = "") -> EventHandle:
        """Schedule *callback* to fire *delay* seconds from now.

        A zero delay is allowed and fires before the engine advances time,
        after all events already queued for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {label or callback!r} {-delay:.9f}s in the past")
        time = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.sequence = sequence
            handle.callback = callback
            handle.label = label
            self._free_reuse += 1
        else:
            handle = EventHandle(time, sequence, callback, label)
        heap = self._heap
        heapq.heappush(heap, (time, sequence, handle))
        if len(heap) > self._heap_peak:
            self._heap_peak = len(heap)
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None], *, label: str = "") -> EventHandle:
        """Schedule *callback* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {label or callback!r} at t={time:.9f}, now is t={self._now:.9f}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.sequence = sequence
            handle.callback = callback
            handle.label = label
            self._free_reuse += 1
        else:
            handle = EventHandle(time, sequence, callback, label)
        heap = self._heap
        heapq.heappush(heap, (time, sequence, handle))
        if len(heap) > self._heap_peak:
            self._heap_peak = len(heap)
        return handle

    def release(self, handle: EventHandle) -> None:
        """Return a fired handle to the allocation free list.

        Caller contract: the engine has already fired the handle
        (``callback is None`` — which also proves it is out of the heap) and
        the caller holds the *only* remaining reference.  Owners of
        short-lived, high-frequency events (the host's per-slice end events)
        release them so the next ``schedule`` re-stamps the same object
        instead of allocating — the same trick
        :meth:`~repro.sim.timers.PeriodicTimer._fire` plays with its own
        handle, generalised through a pool.  Handles still pending in the
        heap must never be released: re-stamping one would leave a stale
        heap entry firing the new callback at the old time.
        """
        if handle.callback is not None:
            raise SimulationError(
                f"cannot release pending event {handle.label!r}: it is still in the heap"
            )
        handle._cancelled = False
        self._free.append(handle)

    # --------------------------------------------------------------- running

    def step(self) -> bool:
        """Fire the single next event.  Returns False when the heap is empty."""
        heap = self._heap
        trace = _obs.TRACER
        while heap:
            _, _, handle = heapq.heappop(heap)
            if handle._cancelled:
                continue
            self._now = handle.time
            callback = handle.callback
            handle.callback = None
            self._events_fired += 1
            if trace is not None:
                trace.engine_event(handle.time, handle.label)
            callback()
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run every event with due time <= *time*, then set now = *time*.

        Events scheduled by fired callbacks are honoured if they fall inside
        the window, so periodic timers chain naturally.
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards to t={time:.9f} from t={self._now:.9f}")
        if self._running:
            raise SimulationError("re-entrant run_until() — the engine is already running")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        # Hoisted once per window: with no tracer installed the hot loop
        # pays nothing per event (a tracer installed mid-window starts at
        # the next run_until call — installation is a between-runs act).
        trace = _obs.TRACER
        try:
            if trace is not None:
                while heap:
                    due = heap[0][0]
                    if due > time:
                        break
                    _, _, handle = pop(heap)
                    if handle._cancelled:
                        continue
                    self._now = due
                    callback = handle.callback
                    handle.callback = None
                    self._events_fired += 1
                    trace.engine_event(due, handle.label)
                    callback()
            else:
                while heap:
                    due = heap[0][0]
                    if due > time:
                        break
                    _, _, handle = pop(heap)
                    if handle._cancelled:
                        continue
                    self._now = due
                    callback = handle.callback
                    handle.callback = None
                    self._events_fired += 1
                    callback()
            if time > self._now:
                self._now = time
        finally:
            self._running = False

    def run_until_idle(self, *, max_events: int | None = None) -> None:
        """Run until no events remain (or *max_events* have fired)."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                raise SimulationError(f"run_until_idle exceeded max_events={max_events}")

    # ---------------------------------------------------------- introspection

    def pending_events(self) -> Iterator[EventHandle]:
        """Yield pending events in an unspecified order (debugging aid)."""
        return (handle for _, _, handle in self._heap if not handle._cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self._now:.6f}, pending={self.pending_count}, fired={self._events_fired})"
