"""Periodic timers on top of the event engine.

Governors sample every 100 ms or 1 s, the credit scheduler accounts every
30 ms and ticks every 10 ms, load monitors sample every second — all of these
are :class:`PeriodicTimer` instances.  The timer re-arms itself *before*
invoking the callback so a callback that stops the timer does not leave a
stray event behind (the pending handle is cancelled on stop).
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable

from ..errors import SimulationError
from ..units import check_positive
from .engine import Engine
from .events import EventHandle


class PeriodicTimer:
    """Fires ``callback(now)`` every *period* seconds until stopped.

    The first firing happens at ``start_time + period`` unless
    ``fire_immediately`` is set, in which case it also fires at start time.
    """

    __slots__ = (
        "_engine",
        "_period",
        "_callback",
        "_label",
        "_fire_immediately",
        "_handle",
        "_fire_count",
        "_started",
    )

    def __init__(
        self,
        engine: Engine,
        period: float,
        callback: Callable[[float], None],
        *,
        label: str = "timer",
        fire_immediately: bool = False,
    ) -> None:
        self._engine = engine
        self._period = check_positive(period, "period")
        self._callback = callback
        self._label = label
        self._fire_immediately = fire_immediately
        self._handle: EventHandle | None = None
        self._fire_count = 0
        self._started = False

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Arm the timer.  Starting twice is an error."""
        if self._started:
            raise SimulationError(f"timer {self._label!r} started twice")
        self._started = True
        delay = 0.0 if self._fire_immediately else self._period
        self._handle = self._engine.schedule(delay, self._fire, label=self._label)

    def stop(self) -> None:
        """Disarm the timer.  Safe to call when already stopped."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._started = False

    @property
    def running(self) -> bool:
        """True while the timer is armed."""
        return self._started

    @property
    def period(self) -> float:
        """Current period in seconds."""
        return self._period

    @property
    def fire_count(self) -> int:
        """Number of times the callback has fired."""
        return self._fire_count

    def reschedule(self, period: float) -> None:
        """Change the period; takes effect from the next firing."""
        self._period = check_positive(period, "period")

    # ------------------------------------------------------------ internals

    def _fire(self) -> None:
        # Re-arm first: the callback may call stop(), which must cancel the
        # handle we create here, not an already-fired one.  The re-arm is an
        # inlined Engine.schedule — periodic timers account for most of the
        # events in a run, and the period is validated positive once at
        # construction, so the per-fire delay check and call layer are pure
        # overhead.
        engine = self._engine
        time = engine._now + self._period
        sequence = engine._sequence
        engine._sequence = sequence + 1
        handle = self._handle
        if handle is not None and handle.callback is None and not handle._cancelled:
            # Reuse the just-fired handle: nothing else references it once
            # the engine popped it, so re-stamping beats re-allocating at
            # one event per period for the lifetime of the run.
            handle.time = time
            handle.sequence = sequence
            handle.callback = self._fire
        else:
            handle = EventHandle(time, sequence, self._fire, self._label)
            self._handle = handle
        heappush(engine._heap, (time, sequence, handle))
        self._fire_count += 1
        self._callback(engine._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._started else "stopped"
        return f"PeriodicTimer({self._label!r}, period={self._period}, {state}, fired={self._fire_count})"
