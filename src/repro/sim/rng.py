"""Named, seeded random-number streams.

Each component that needs randomness (request injectors, calibration noise)
asks for a stream by name.  Streams are derived from a single root seed with
a stable hash, so adding a new consumer never perturbs the draws seen by
existing consumers — runs stay reproducible as the system grows.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent :class:`random.Random` instances.

    >>> streams = RngStreams(seed=42)
    >>> a = streams.stream("injector.V20")
    >>> b = streams.stream("injector.V70")
    >>> a is streams.stream("injector.V20")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """Root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        derived_seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(derived_seed)
        self._streams[name] = stream
        return stream

    def names(self) -> list[str]:
        """Names of all streams created so far, in creation order."""
        return list(self._streams)
