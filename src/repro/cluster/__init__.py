"""Datacenter orchestration substrate (grown from the §2.3 argument).

§2.3 claims — without measuring — that server consolidation cannot replace
DVFS because **memory bounds packing**.  This package makes the claim
quantitative, and then takes it to production scale: an epoch-driven
:class:`~repro.cluster.orchestrator.Orchestrator` re-evaluates the fleet
every epoch, live-migrates VMs under a configurable cost model, and steers
per-host frequency bounds — so cluster-level policies (static
credit-provisioning, hysteretic consolidation, load balancing, and the
multi-host-PAS ``power-budget`` watt cap) can be compared on energy, SLA,
churn and cap compliance.

It is a *fleet-scale, epoch-fluid* model (demand and capacity as rates per
epoch), deliberately coarser than the slice-level single-host simulator in
:mod:`repro.hypervisor`: cluster placement decisions play out over minutes,
where per-slice mechanics average out.  It reuses the same processor catalog,
the Eq. 1 capacity law and the package power model, so per-host frequency
selection is exactly Listing 1.1.

Pieces:

* :class:`~repro.cluster.machine.MachineSpec` / ``Machine`` — a host with a
  processor, finite memory and policy-clampable frequency;
* :class:`~repro.cluster.vm.ClusterVM` — a VM with booked credit, a memory
  footprint and a demand trace;
* :mod:`~repro.cluster.policies` — the orchestration policy registry
  (``static``, ``consolidate``, ``load-balance``, ``power-budget``);
* :mod:`~repro.cluster.migration` — downtime + dirty-page-copy pricing of
  one live migration;
* legacy placement callables (:mod:`~repro.cluster.placement`) — spread vs
  memory-bound first-fit consolidation;
* :class:`~repro.cluster.orchestrator.Orchestrator` (alias ``ClusterSim``)
  — the epoch loop, producing fleet *and* per-host telemetry series;
* :class:`~repro.cluster.scenario.ClusterScenarioConfig` — the declarative,
  sweepable fleet spec (day-shape populations, migration pricing, watt
  caps).
"""

from .machine import Machine, MachineSpec
from .vm import ClusterVM
from .migration import (
    DEFAULT_MIGRATION,
    FREE_MIGRATION,
    MigrationEvent,
    MigrationModel,
)
from .placement import consolidate_first_fit, PlacementError, spread_round_robin
from .policies import (
    ConsolidatePolicy,
    current_assignment,
    EpochPlan,
    LoadBalancePolicy,
    make_policy,
    OrchestrationPolicy,
    POLICY_REGISTRY,
    policy_names,
    PowerBudgetPolicy,
    StaticPolicy,
)
from .orchestrator import ClusterSim, EpochStats, Orchestrator
from .scenario import (
    build_cluster,
    ClusterScenarioConfig,
    make_population,
    POLICIES,
    run_cluster_scenario,
)

__all__ = [
    "Machine",
    "MachineSpec",
    "ClusterVM",
    "MigrationModel",
    "MigrationEvent",
    "DEFAULT_MIGRATION",
    "FREE_MIGRATION",
    "consolidate_first_fit",
    "spread_round_robin",
    "PlacementError",
    "OrchestrationPolicy",
    "EpochPlan",
    "StaticPolicy",
    "ConsolidatePolicy",
    "LoadBalancePolicy",
    "PowerBudgetPolicy",
    "POLICY_REGISTRY",
    "POLICIES",
    "policy_names",
    "make_policy",
    "current_assignment",
    "ClusterSim",
    "Orchestrator",
    "EpochStats",
    "ClusterScenarioConfig",
    "build_cluster",
    "make_population",
    "run_cluster_scenario",
]
