"""Hosting-center consolidation substrate (the paper's §2.3 argument).

§2.3 claims — without measuring — that server consolidation cannot replace
DVFS because **memory bounds packing**: "Any VM, even idle, needs physical
memory, which limits the number of VMs that can be executed on a host ...
Consequently, DVFS is complementary to consolidation."  This package makes
the claim quantitative.

It is a *fleet-scale, epoch-fluid* model (demand and capacity as rates per
epoch), deliberately coarser than the slice-level single-host simulator in
:mod:`repro.hypervisor`: cluster placement decisions play out over minutes,
where per-slice mechanics average out.  It reuses the same processor catalog,
the Eq. 1 capacity law and the package power model, so per-host frequency
selection is exactly Listing 1.1.

Pieces:

* :class:`~repro.cluster.machine.MachineSpec` / ``Machine`` — a host with a
  processor and finite memory;
* :class:`~repro.cluster.vm.ClusterVM` — a VM with booked credit, a memory
  footprint and a demand trace;
* placement policies (:mod:`~repro.cluster.placement`) — spread vs
  memory-bound first-fit consolidation;
* :class:`~repro.cluster.simulator.ClusterSim` — epoch loop producing
  energy, machines-on and SLA-delivery series.
"""

from .machine import Machine, MachineSpec
from .vm import ClusterVM
from .placement import consolidate_first_fit, PlacementError, spread_round_robin
from .simulator import ClusterSim, EpochStats
from .scenario import (
    build_cluster,
    ClusterScenarioConfig,
    make_population,
    run_cluster_scenario,
)

__all__ = [
    "Machine",
    "MachineSpec",
    "ClusterVM",
    "consolidate_first_fit",
    "spread_round_robin",
    "PlacementError",
    "ClusterSim",
    "EpochStats",
    "ClusterScenarioConfig",
    "build_cluster",
    "make_population",
    "run_cluster_scenario",
]
