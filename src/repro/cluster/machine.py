"""Cluster-level machine: a processor plus finite memory.

Per epoch, a powered-on machine serves the demand of its placed VMs up to
its capacity at the chosen P-state; frequency selection is Listing 1.1 on
the aggregate demand (plus a fixed hypervisor overhead), identical to the
single-host PAS rule.  A powered-off machine consumes nothing and hosts
nothing — the consolidation pay-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import laws
from ..cpu import catalog
from ..cpu.processor import ProcessorSpec
from ..errors import ConfigurationError
from ..units import check_non_negative, check_positive
from .vm import ClusterVM


@dataclass(frozen=True)
class MachineSpec:
    """Hardware of one hosting-center machine."""

    processor: ProcessorSpec = field(default_factory=lambda: catalog.CORE_I7_3770)
    memory_mb: int = 16384
    #: Hypervisor/Dom0 overhead in percent of max-frequency capacity.
    overhead_percent: float = 5.0

    def __post_init__(self) -> None:
        check_positive(self.memory_mb, "memory_mb")
        check_non_negative(self.overhead_percent, "overhead_percent")


class Machine:
    """Runtime machine state: placed VMs, power state, energy integrator."""

    def __init__(self, name: str, spec: MachineSpec) -> None:
        self.name = name
        self.spec = spec
        self._table = spec.processor.table()
        self._vms: dict[str, ClusterVM] = {}
        self.powered_on = True
        self.energy_joules = 0.0
        self.freq_mhz = self._table.max_state.freq_mhz
        self.last_util = 0.0
        self.last_power_w = 0.0
        #: BE demand multiplier set by fleet QoS for the next epoch
        #: (1.0 = unthrottled; only best-effort VMs are scaled).
        self.be_quota_fraction = 1.0

    @property
    def table(self):
        """The processor's P-state table (policies steer against it)."""
        return self._table

    # ------------------------------------------------------------ placement

    @property
    def vms(self) -> list[ClusterVM]:
        """VMs currently placed here."""
        return list(self._vms.values())

    @property
    def memory_used_mb(self) -> int:
        """Memory claimed by placed VMs."""
        return sum(vm.memory_mb for vm in self._vms.values())

    @property
    def memory_free_mb(self) -> int:
        """Remaining memory."""
        return self.spec.memory_mb - self.memory_used_mb

    def fits(self, vm: ClusterVM) -> bool:
        """True when *vm*'s memory footprint fits (the §2.3 constraint)."""
        return vm.memory_mb <= self.memory_free_mb

    def place(self, vm: ClusterVM) -> None:
        """Place *vm* here; raises when memory does not fit."""
        if vm.name in self._vms:
            raise ConfigurationError(f"VM {vm.name!r} already on {self.name!r}")
        if not self.fits(vm):
            raise ConfigurationError(
                f"VM {vm.name!r} ({vm.memory_mb} MB) does not fit on {self.name!r} "
                f"({self.memory_free_mb} MB free)"
            )
        self._vms[vm.name] = vm
        self.powered_on = True

    def evict(self, vm: ClusterVM) -> None:
        """Remove *vm* from this machine."""
        if vm.name not in self._vms:
            raise ConfigurationError(f"VM {vm.name!r} is not on {self.name!r}")
        del self._vms[vm.name]

    def clear(self) -> list[ClusterVM]:
        """Remove and return all VMs (used when re-packing)."""
        vms = list(self._vms.values())
        self._vms.clear()
        return vms

    # ----------------------------------------------------------------- epoch

    def run_epoch(
        self,
        time: float,
        dt: float,
        *,
        dvfs: bool,
        extra_demand_percent: float = 0.0,
        freq_floor_mhz: int | None = None,
        freq_ceiling_mhz: int | None = None,
    ) -> tuple[float, float]:
        """Serve one epoch; returns ``(demand, served)`` in absolute percent.

        With *dvfs* the machine picks the lowest absorbing P-state for the
        aggregate demand (Listing 1.1); without, it stays at maximum.  An
        empty, powered-off machine consumes no energy.

        ``extra_demand_percent`` is non-VM work charged to the host this
        epoch (migration dirty-page copies); it joins the frequency choice
        and the utilisation integral but competes with — rather than counts
        as — served VM demand.  ``freq_floor_mhz``/``freq_ceiling_mhz``
        clamp the chosen frequency to the orchestration policy's bounds
        (snapped to table states; the ceiling wins when they conflict).
        """
        check_non_negative(dt, "dt")
        if not self.powered_on:
            if self._vms:
                raise ConfigurationError(
                    f"machine {self.name!r} is off but hosts {len(self._vms)} VMs"
                )
            self.freq_mhz = self._table.min_state.freq_mhz
            self.last_util = 0.0
            self.last_power_w = 0.0
            return 0.0, 0.0
        check_non_negative(extra_demand_percent, "extra_demand_percent")
        fraction = self.be_quota_fraction
        if fraction < 1.0:
            # Fleet QoS throttle: best-effort VMs admit only a fraction of
            # their demand this epoch; latency-critical VMs are untouched.
            demand = sum(
                vm.demand_at(time) * (fraction if vm.service_class == "be" else 1.0)
                for vm in self._vms.values()
            )
        else:
            demand = sum(vm.demand_at(time) for vm in self._vms.values())
        overhead = self.spec.overhead_percent if self._vms else 0.0
        total = demand + overhead + extra_demand_percent
        if dvfs:
            self.freq_mhz = laws.compute_new_frequency(self._table, total)
        else:
            self.freq_mhz = self._table.max_state.freq_mhz
        if freq_floor_mhz is not None and self.freq_mhz < freq_floor_mhz:
            self.freq_mhz = self._table.clamp(freq_floor_mhz).freq_mhz
        if freq_ceiling_mhz is not None and self.freq_mhz > freq_ceiling_mhz:
            self.freq_mhz = self._table.clamp_down(freq_ceiling_mhz).freq_mhz
        state = self._table.state_for(self.freq_mhz)
        capacity = state.capacity_fraction(self._table.max_state.freq_mhz) * 100.0
        served = min(
            demand,
            max(0.0, capacity - self.spec.overhead_percent - extra_demand_percent),
        )
        utilization = (
            min(1.0, (served + overhead + extra_demand_percent) / capacity)
            if capacity > 0
            else 0.0
        )
        power = self.spec.processor.power.power(state, self._table, utilization)
        self.energy_joules += power * dt
        self.last_util = utilization
        self.last_power_w = power
        return demand, served

    def power_off_if_empty(self) -> bool:
        """Power down when no VMs remain; True if a shutdown happened."""
        if not self._vms and self.powered_on:
            self.powered_on = False
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.powered_on else "off"
        return f"Machine({self.name!r}, {state}, vms={len(self._vms)}, mem={self.memory_used_mb}MB)"
