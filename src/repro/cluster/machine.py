"""Cluster-level machine: a processor plus finite memory.

Per epoch, a powered-on machine serves the demand of its placed VMs up to
its capacity at the chosen P-state; frequency selection is Listing 1.1 on
the aggregate demand (plus a fixed hypervisor overhead), identical to the
single-host PAS rule.  A powered-off machine consumes nothing and hosts
nothing — the consolidation pay-off the paper describes.

Heterogeneous parts (a :class:`~repro.cpu.processor.ProcessorSpec` with
frequency ``domains``) serve through their clusters instead of one table:
load fills domains cheapest-first (full-load watts per unit capacity),
each domain picks its own Listing 1.1 P-state for its share — all cores of
a cluster move together — and idle domains drop into C-states through the
residency-aware selection rule.  Capacity, power prediction and frequency
stepping are exposed uniformly (:attr:`Machine.capacity_percent`,
:meth:`Machine.predict_power`, :meth:`Machine.plan_frequency`, ...) so the
orchestration policies steer homogeneous and heterogeneous hosts through
one interface; on homogeneous machines every helper reproduces the
pre-domain arithmetic bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core import laws
from ..cpu import catalog
from ..cpu.domains import FrequencyDomain
from ..cpu.processor import ProcessorSpec
from ..errors import ConfigurationError
from ..units import check_non_negative, check_positive
from .vm import ClusterVM


@dataclass(frozen=True)
class MachineSpec:
    """Hardware of one hosting-center machine (or a group of *count* alike).

    The ``machines`` list of a
    :class:`~repro.cluster.scenario.ClusterScenarioConfig` is a tuple of
    these; ``count`` makes one entry describe a whole homogeneous group, so
    a mixed fleet is e.g. ``(MachineSpec(count=6), MachineSpec(count=2,
    processor=BIG_LITTLE_44))``.  Serialisation is omit-when-default (only
    ``processor`` — by catalog name — and ``memory_mb`` always appear), so
    pre-heterogeneity dictionaries and their sha256 store keys stay
    byte-identical.
    """

    processor: ProcessorSpec = field(default_factory=lambda: catalog.CORE_I7_3770)
    memory_mb: int = 16384
    #: Hypervisor/Dom0 overhead in percent of max-frequency capacity.
    overhead_percent: float = 5.0
    #: Machines of this kind (fleet-group expansion; inert on a single
    #: runtime :class:`Machine`).
    count: int = 1

    def __post_init__(self) -> None:
        check_positive(self.memory_mb, "memory_mb")
        check_non_negative(self.overhead_percent, "overhead_percent")
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")

    def describe(self) -> str:
        """Compact human-readable label (grid cell labelling)."""
        return f"{self.count}x{self.processor.name}/{self.memory_mb}MB"

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form: ``processor`` by catalog name, defaults omitted.

        ``memory_mb`` is always emitted; ``overhead_percent`` and ``count``
        only off their defaults — the omit-when-default contract that keeps
        store keys stable as fields accrete.
        """
        out: dict[str, Any] = {
            "processor": self.processor.name,
            "memory_mb": self.memory_mb,
        }
        if self.overhead_percent != 5.0:
            out["overhead_percent"] = self.overhead_percent
        if self.count != 1:
            out["count"] = self.count
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MachineSpec":
        """Rebuild a spec from :meth:`to_dict` output or a scenario file.

        The processor may be given as a catalog name; unknown keys raise a
        :class:`ConfigurationError` naming the valid fields.
        """
        kwargs = dict(data)
        known = ("processor", "memory_mb", "overhead_percent", "count")
        unknown = sorted(set(kwargs) - set(known))
        if unknown:
            raise ConfigurationError(
                f"unknown machine spec field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(known)}"
            )
        processor = kwargs.get("processor")
        if isinstance(processor, str):
            kwargs["processor"] = catalog.processor_from_name(processor)
        return cls(**kwargs)


class Machine:
    """Runtime machine state: placed VMs, power state, energy integrator."""

    def __init__(self, name: str, spec: MachineSpec) -> None:
        self.name = name
        self.spec = spec
        self._table = spec.processor.table()
        self._vms: dict[str, ClusterVM] = {}
        self.powered_on = True
        self.energy_joules = 0.0
        self.freq_mhz = self._table.max_state.freq_mhz
        self.last_util = 0.0
        self.last_power_w = 0.0
        #: BE demand multiplier set by fleet QoS for the next epoch
        #: (1.0 = unthrottled; only best-effort VMs are scaled).
        self.be_quota_fraction = 1.0
        #: Runtime frequency domains (empty for homogeneous parts), served
        #: cheapest-first: ascending full-load watts per unit capacity.
        self.domains: list[FrequencyDomain] = [
            FrequencyDomain(domain_spec) for domain_spec in spec.processor.domains
        ]
        self._fill_order = sorted(
            range(len(self.domains)),
            key=lambda i: (
                self.domains[i].spec.power.power(
                    self.domains[i].table.max_state, self.domains[i].table, 1.0
                )
                / self.domains[i].max_capacity_percent,
                i,
            ),
        )
        if self.domains:
            self._freq_choices = tuple(
                sorted({f for domain in self.domains for f in domain.table.frequencies})
            )
        else:
            self._freq_choices = self._table.frequencies

    @property
    def table(self):
        """The processor's P-state table (policies steer against it)."""
        return self._table

    # ------------------------------------------------------- hardware shape

    @property
    def is_heterogeneous(self) -> bool:
        """True when the processor has per-cluster frequency domains."""
        return bool(self.domains)

    @property
    def capacity_percent(self) -> float:
        """Max-frequency capacity in percent of the reference host.

        Homogeneous machines are the reference (exactly 100.0, the
        historical convention every packing threshold is expressed in);
        heterogeneous ones sum their domains' top-state capacities.
        """
        if self.domains:
            return sum(domain.max_capacity_percent for domain in self.domains)
        return 100.0

    @property
    def full_power_w(self) -> float:
        """Package draw at top frequency, fully utilised."""
        if self.domains:
            return sum(
                domain.spec.power.power(domain.table.max_state, domain.table, 1.0)
                for domain in self.domains
            )
        return self.spec.processor.power.power(
            self._table.max_state, self._table, 1.0
        )

    @property
    def efficiency_w_per_percent(self) -> float:
        """Full-load watts per unit capacity — the packing-preference key."""
        return self.full_power_w / self.capacity_percent

    @property
    def max_freq_mhz(self) -> int:
        """Highest frequency on the machine (fastest domain's top state)."""
        return self._freq_choices[-1]

    @property
    def min_freq_mhz(self) -> int:
        """Lowest frequency on the machine."""
        return self._freq_choices[0]

    @property
    def freq_choices(self) -> tuple[int, ...]:
        """The machine-level frequency ladder policies step along.

        Homogeneous: the table's frequencies.  Heterogeneous: the sorted
        union of the domains' frequencies — a ceiling from this ladder
        clamps each domain down into its own table.
        """
        return self._freq_choices

    def step_down_choice(self, freq_mhz: int) -> int:
        """One ladder step below *freq_mhz* (saturates at the bottom)."""
        if not self.domains:
            return self._table.step_down(freq_mhz).freq_mhz
        index = self._freq_choices.index(freq_mhz)
        return self._freq_choices[max(index - 1, 0)]

    def capacity_at_ceiling(self, freq_ceiling_mhz: int) -> float:
        """Machine capacity with every domain clamped down to a ceiling."""
        if not self.domains:
            state = self._table.clamp_down(freq_ceiling_mhz)
            return state.capacity_fraction(self._table.max_state.freq_mhz) * 100.0
        return sum(
            domain.capacity_percent_at(domain.table.clamp_down(freq_ceiling_mhz))
            for domain in self.domains
        )

    def plan_frequency(self, total_percent: float) -> int:
        """Listing 1.1 at machine level: lowest ladder rung absorbing a load.

        Homogeneous machines delegate to the paper's own rule; for
        heterogeneous ones the rung is a common ceiling — each domain
        clamps down into its own table, so the capacity at a rung sums the
        per-domain clamped states.
        """
        if not self.domains:
            return laws.compute_new_frequency(self._table, total_percent)
        for freq_mhz in self._freq_choices:
            if self.capacity_at_ceiling(freq_mhz) > total_percent:
                return freq_mhz
        return self._freq_choices[-1]

    # ------------------------------------------------------------ placement

    @property
    def vms(self) -> list[ClusterVM]:
        """VMs currently placed here."""
        return list(self._vms.values())

    @property
    def memory_used_mb(self) -> int:
        """Memory claimed by placed VMs."""
        return sum(vm.memory_mb for vm in self._vms.values())

    @property
    def memory_free_mb(self) -> int:
        """Remaining memory."""
        return self.spec.memory_mb - self.memory_used_mb

    def fits(self, vm: ClusterVM) -> bool:
        """True when *vm*'s memory footprint fits (the §2.3 constraint)."""
        return vm.memory_mb <= self.memory_free_mb

    def place(self, vm: ClusterVM) -> None:
        """Place *vm* here; raises when memory does not fit."""
        if vm.name in self._vms:
            raise ConfigurationError(f"VM {vm.name!r} already on {self.name!r}")
        if not self.fits(vm):
            raise ConfigurationError(
                f"VM {vm.name!r} ({vm.memory_mb} MB) does not fit on {self.name!r} "
                f"({self.memory_free_mb} MB free)"
            )
        self._vms[vm.name] = vm
        self.powered_on = True

    def evict(self, vm: ClusterVM) -> None:
        """Remove *vm* from this machine."""
        if vm.name not in self._vms:
            raise ConfigurationError(f"VM {vm.name!r} is not on {self.name!r}")
        del self._vms[vm.name]

    def clear(self) -> list[ClusterVM]:
        """Remove and return all VMs (used when re-packing)."""
        vms = list(self._vms.values())
        self._vms.clear()
        return vms

    # ----------------------------------------------------------------- epoch

    def run_epoch(
        self,
        time: float,
        dt: float,
        *,
        dvfs: bool,
        extra_demand_percent: float = 0.0,
        freq_floor_mhz: int | None = None,
        freq_ceiling_mhz: int | None = None,
    ) -> tuple[float, float]:
        """Serve one epoch; returns ``(demand, served)`` in absolute percent.

        With *dvfs* the machine picks the lowest absorbing P-state for the
        aggregate demand (Listing 1.1); without, it stays at maximum.  An
        empty, powered-off machine consumes no energy.

        ``extra_demand_percent`` is non-VM work charged to the host this
        epoch (migration dirty-page copies); it joins the frequency choice
        and the utilisation integral but competes with — rather than counts
        as — served VM demand.  ``freq_floor_mhz``/``freq_ceiling_mhz``
        clamp the chosen frequency to the orchestration policy's bounds
        (snapped to table states; the ceiling wins when they conflict).
        """
        check_non_negative(dt, "dt")
        if not self.powered_on:
            if self._vms:
                raise ConfigurationError(
                    f"machine {self.name!r} is off but hosts {len(self._vms)} VMs"
                )
            self.freq_mhz = self.min_freq_mhz
            for domain in self.domains:
                domain.set_frequency(domain.table.min_state.freq_mhz)
            self.last_util = 0.0
            self.last_power_w = 0.0
            return 0.0, 0.0
        check_non_negative(extra_demand_percent, "extra_demand_percent")
        fraction = self.be_quota_fraction
        if fraction < 1.0:
            # Fleet QoS throttle: best-effort VMs admit only a fraction of
            # their demand this epoch; latency-critical VMs are untouched.
            demand = sum(
                vm.demand_at(time) * (fraction if vm.service_class == "be" else 1.0)
                for vm in self._vms.values()
            )
        else:
            demand = sum(vm.demand_at(time) for vm in self._vms.values())
        overhead = self.spec.overhead_percent if self._vms else 0.0
        total = demand + overhead + extra_demand_percent
        if self.domains:
            return self._run_epoch_domains(
                dt,
                demand,
                total,
                dvfs=dvfs,
                extra_demand_percent=extra_demand_percent,
                freq_floor_mhz=freq_floor_mhz,
                freq_ceiling_mhz=freq_ceiling_mhz,
            )
        if dvfs:
            self.freq_mhz = laws.compute_new_frequency(self._table, total)
        else:
            self.freq_mhz = self._table.max_state.freq_mhz
        if freq_floor_mhz is not None and self.freq_mhz < freq_floor_mhz:
            self.freq_mhz = self._table.clamp(freq_floor_mhz).freq_mhz
        if freq_ceiling_mhz is not None and self.freq_mhz > freq_ceiling_mhz:
            self.freq_mhz = self._table.clamp_down(freq_ceiling_mhz).freq_mhz
        state = self._table.state_for(self.freq_mhz)
        capacity = state.capacity_fraction(self._table.max_state.freq_mhz) * 100.0
        served = min(
            demand,
            max(0.0, capacity - self.spec.overhead_percent - extra_demand_percent),
        )
        utilization = (
            min(1.0, (served + overhead + extra_demand_percent) / capacity)
            if capacity > 0
            else 0.0
        )
        power = self.spec.processor.power.power(state, self._table, utilization)
        self.energy_joules += power * dt
        self.last_util = utilization
        self.last_power_w = power
        return demand, served

    def _run_epoch_domains(
        self,
        dt: float,
        demand: float,
        total: float,
        *,
        dvfs: bool,
        extra_demand_percent: float,
        freq_floor_mhz: int | None,
        freq_ceiling_mhz: int | None,
    ) -> tuple[float, float]:
        """The heterogeneous serving path: per-domain P-states and C-states.

        The machine-level ladder rung Listing 1.1 picks (or the max without
        DVFS) is clamped by the policy's floor/ceiling, then every domain
        snaps it down into its own table — the whole-cluster frequency
        coupling.  The executed work (served demand + overhead + migration
        copies) fills domains cheapest-first; each domain integrates energy
        through its C-state ladder for the idle remainder.
        """
        overhead = self.spec.overhead_percent if self._vms else 0.0
        if dvfs:
            ceiling = self.plan_frequency(total)
        else:
            ceiling = self.max_freq_mhz
        if freq_floor_mhz is not None and ceiling < freq_floor_mhz:
            nearest = [f for f in self._freq_choices if f >= freq_floor_mhz]
            ceiling = nearest[0] if nearest else self.max_freq_mhz
        if freq_ceiling_mhz is not None and ceiling > freq_ceiling_mhz:
            nearest = [f for f in self._freq_choices if f <= freq_ceiling_mhz]
            ceiling = nearest[-1] if nearest else self.min_freq_mhz
        capacities = []
        for domain in self.domains:
            domain.set_frequency(domain.table.clamp_down(ceiling).freq_mhz)
            capacities.append(domain.capacity_percent)
        capacity = sum(capacities)
        served = min(
            demand,
            max(0.0, capacity - self.spec.overhead_percent - extra_demand_percent),
        )
        executed = min(total, capacity)
        energy = 0.0
        remaining = executed
        for index in self._fill_order:
            domain = self.domains[index]
            share = min(remaining, capacities[index])
            remaining -= share
            utilization = (
                min(1.0, share / capacities[index]) if capacities[index] > 0 else 0.0
            )
            energy += domain.account_epoch(dt, utilization)
        self.freq_mhz = max(domain.freq_mhz for domain in self.domains)
        self.energy_joules += energy
        self.last_util = (
            min(1.0, (served + overhead + extra_demand_percent) / capacity)
            if capacity > 0
            else 0.0
        )
        self.last_power_w = energy / dt if dt > 0 else 0.0
        return demand, served

    def predict_power(
        self, total_percent: float, freq_mhz: int, *, full_util: bool = False
    ) -> float:
        """Package watts serving *total_percent* with the clock at *freq_mhz*.

        The power-budget policy's admission arithmetic: on homogeneous
        machines this reproduces its historical per-host prediction bit for
        bit; heterogeneous machines distribute the load over their domains
        exactly like :meth:`run_epoch` will, but C-state savings are
        ignored (the prediction must upper-bound delivery).  *full_util*
        prices the host fully busy — migration-touched hosts whose
        dirty-page copies the demand numbers do not show.
        """
        if not self.domains:
            table = self._table
            state = table.state_for(freq_mhz)
            capacity = state.capacity_fraction(table.max_state.freq_mhz) * 100.0
            utilization = min(1.0, total_percent / capacity) if capacity > 0 else 0.0
            if full_util:
                utilization = 1.0
            return self.spec.processor.power.power(state, table, utilization)
        watts = 0.0
        capacities = [
            domain.capacity_percent_at(domain.table.clamp_down(freq_mhz))
            for domain in self.domains
        ]
        remaining = min(total_percent, sum(capacities))
        shares = [0.0] * len(self.domains)
        for index in self._fill_order:
            shares[index] = min(remaining, capacities[index])
            remaining -= shares[index]
        for index, domain in enumerate(self.domains):
            state = domain.table.clamp_down(freq_mhz)
            utilization = (
                min(1.0, shares[index] / capacities[index])
                if capacities[index] > 0
                else 0.0
            )
            if full_util:
                utilization = 1.0
            watts += domain.spec.power.power(state, domain.table, utilization)
        return watts

    def cstate_residency(self) -> dict[str, float]:
        """Idle seconds per C-state summed over this machine's domains."""
        residency: dict[str, float] = {}
        for domain in self.domains:
            for state_name, seconds in domain.residency_s.items():
                residency[state_name] = residency.get(state_name, 0.0) + seconds
        return residency

    def domain_records(self) -> list[dict[str, Any]]:
        """One flat dict per domain: the per-cluster telemetry snapshot."""
        return [
            {
                "domain": domain.spec.name,
                "freq_mhz": domain.freq_mhz,
                "util": domain.last_util_fraction,
                "power_w": domain.last_power_w,
                "cstate": domain.last_cstate,
            }
            for domain in self.domains
        ]

    def power_off_if_empty(self) -> bool:
        """Power down when no VMs remain; True if a shutdown happened."""
        if not self._vms and self.powered_on:
            self.powered_on = False
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.powered_on else "off"
        return f"Machine({self.name!r}, {state}, vms={len(self._vms)}, mem={self.memory_used_mb}MB)"
