"""Cluster-level VM: booked credit, memory footprint, demand trace."""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from ..units import check_percent, check_positive


class ClusterVM:
    """A VM as the consolidation layer sees it.

    Parameters
    ----------
    name:
        Unique identifier.
    credit:
        Booked share in percent of one *max-frequency* processor — the same
        SLA notion as everywhere else in the library.
    memory_mb:
        Physical memory the VM needs wherever it is placed (the §2.3
        bottleneck: this is owed even when the VM idles).
    demand:
        ``demand(epoch_time) -> percent`` of max-frequency capacity the VM
        wants at that time.  Delivery is capped at the booked credit.
    service_class:
        QoS class (``lc`` / ``be``); fleet QoS throttles only ``be`` VMs on
        machines whose ``lc`` VMs are short-served.  Inert without a fleet
        controller.
    """

    def __init__(
        self,
        name: str,
        *,
        credit: float,
        memory_mb: int,
        demand: Callable[[float], float],
        service_class: str = "be",
    ) -> None:
        if not name:
            raise ConfigurationError("VM name must be non-empty")
        if service_class not in ("lc", "be"):
            raise ConfigurationError(
                f"unknown service class {service_class!r}; use 'lc' or 'be'"
            )
        self.name = name
        self.credit = check_percent(credit, "credit", allow_zero=False)
        self.memory_mb = int(check_positive(memory_mb, "memory_mb"))
        self.service_class = service_class
        self._demand = demand

    def demand_at(self, time: float) -> float:
        """Demand in percent at *time*, clamped to [0, credit].

        The clamp encodes fix-credit semantics at fleet scale: a VM can ask
        for at most what it bought (the thrashing case is a single-host
        scheduling problem, handled by :mod:`repro.core`).
        """
        demand = self._demand(time)
        if demand < 0:
            raise ConfigurationError(
                f"VM {self.name!r} returned negative demand {demand} at t={time}"
            )
        return min(demand, self.credit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterVM({self.name!r}, credit={self.credit}%, mem={self.memory_mb}MB)"
