"""The epoch-driven datacenter orchestrator.

Each epoch the :class:`Orchestrator` (1) asks its policy for an
:class:`~repro.cluster.policies.EpochPlan`, (2) executes the plan's
migrations — charging the configured
:class:`~repro.cluster.migration.MigrationModel` costs: dirty-page copy CPU
to the source *and* destination hosts, a service blackout to the migrating
VM — (3) serves every machine's demand at its (DVFS-chosen, policy-clamped)
P-state, integrating energy, and (4) records fleet **and** per-host
telemetry: :class:`EpochStats` per epoch, one utilisation/frequency/power
record per host per epoch, and one record per migration event.  The record
lists flow straight through :func:`repro.telemetry.export.records_to_csv`,
so a fleet run exports per-epoch series exactly like a single-host run
exports time series.

Legacy placement callables (``(machines, vms) -> int``, the PR-0 API) are
still accepted: they are invoked every ``repack_every`` epochs exactly as
before, with migrations counted — and, when a migration model is set,
priced — from the assignment diff.

``ClusterSim`` remains the public name (``Orchestrator`` is its alias):
every existing construction site keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError
from ..obs import hooks as _obs
from ..units import check_positive
from .machine import Machine, MachineSpec
from .migration import MigrationEvent, MigrationModel
from .policies import current_assignment, EpochPlan, make_policy, OrchestrationPolicy
from .vm import ClusterVM

#: A legacy placement policy: (machines, vms) -> machines powered on.
Policy = Callable[[Sequence[Machine], Sequence[ClusterVM]], int]

#: Served shortfalls below this (absolute percent) are float noise, not
#: SLA violations.
_SLA_EPSILON = 1e-9

#: Column order of :meth:`Orchestrator.epoch_records` (CSV header source).
EPOCH_RECORD_FIELDS = (
    "epoch_s",
    "time",
    "machines_on",
    "demand_percent",
    "served_percent",
    "sla_fraction",
    "energy_joules",
    "power_w",
    "migrations",
)

#: Column order of :meth:`Orchestrator.host_records`.
HOST_RECORD_FIELDS = (
    "time",
    "machine",
    "powered_on",
    "vms",
    "freq_mhz",
    "util",
    "power_w",
)

#: Column order of :meth:`Orchestrator.migration_records`.
MIGRATION_RECORD_FIELDS = ("time", "vm", "source", "dest")


@dataclass(frozen=True)
class EpochStats:
    """Fleet statistics for one epoch."""

    time: float
    machines_on: int
    demand_percent: float
    served_percent: float
    energy_joules: float
    migrations: int
    power_w: float = 0.0

    @property
    def sla_fraction(self) -> float:
        """Served / demanded (1.0 when the fleet kept every promise)."""
        if self.demand_percent <= 0.0:
            return 1.0
        return self.served_percent / self.demand_percent

    @property
    def sla_violated(self) -> bool:
        """True when some demanded capacity went unserved this epoch."""
        return self.demand_percent - self.served_percent > _SLA_EPSILON


class Orchestrator:
    """A fleet of machines + a VM population + an orchestration policy.

    Parameters
    ----------
    n_machines:
        Fleet size.
    machine_spec:
        Hardware of every machine (homogeneous fleet, like the paper's
        Grid'5000 clusters).
    machine_specs:
        Machine *groups* for mixed fleets: each
        :class:`~repro.cluster.machine.MachineSpec` contributes ``count``
        machines, in group order (``m000``, ``m001``, ...).  Overrides
        ``n_machines``/``machine_spec`` when given; a single group with
        ``count=n`` behaves identically to the homogeneous form.
    vms:
        The VM population.
    policy:
        An :class:`~repro.cluster.policies.OrchestrationPolicy`, a registry
        name (``"static"``, ``"consolidate"``, ``"load-balance"``,
        ``"power-budget"``), or a legacy placement callable
        (:mod:`repro.cluster.placement`).
    dvfs:
        Whether machines scale frequency to their load (Listing 1.1) or pin
        the maximum.
    epoch_s:
        Seconds per epoch (placement + frequency decisions cadence).
    repack_every:
        Legacy callables only: re-run the policy every N epochs
        (orchestration policies are consulted every epoch and self-limit).
    migration:
        Cost model priced per executed migration; ``None`` = free moves
        (the pre-orchestration behaviour).
    power_budget_w:
        Cluster watt cap, handed to the ``"power-budget"`` policy when the
        policy is given by name.
    placement:
        Heterogeneity placement preference (``"efficiency"`` /
        ``"performance"``) handed to by-name policies; ``None`` keeps
        each policy's own default.
    qos:
        Fleet QoS controller kind (``"none"`` / ``"naive"`` / ``"ladder"``,
        :class:`~repro.qos.fleet.FleetQos`): throttles best-effort VM demand
        on machines whose latency-critical VMs are short-served.
    """

    def __init__(
        self,
        *,
        n_machines: int,
        vms: Sequence[ClusterVM],
        policy: OrchestrationPolicy | Policy | str,
        dvfs: bool,
        machine_spec: MachineSpec | None = None,
        machine_specs: Sequence[MachineSpec] | None = None,
        epoch_s: float = 10.0,
        repack_every: int = 1,
        migration: MigrationModel | None = None,
        power_budget_w: float | None = None,
        placement: str | None = None,
        qos: str = "none",
    ) -> None:
        if machine_specs is None and n_machines < 1:
            raise ConfigurationError(f"need at least one machine, got {n_machines}")
        if repack_every < 1:
            raise ConfigurationError(f"repack_every must be >= 1, got {repack_every}")
        names = {vm.name for vm in vms}
        if len(names) != len(vms):
            raise ConfigurationError("duplicate VM names in the population")
        if isinstance(policy, str):
            policy = make_policy(
                policy, power_budget_w=power_budget_w, placement=placement
            )
        if not isinstance(policy, OrchestrationPolicy) and not callable(policy):
            raise ConfigurationError(
                f"policy must be an OrchestrationPolicy, a registry name or a "
                f"placement callable, got {type(policy).__name__}"
            )
        if machine_specs is not None:
            expanded = [spec for spec in machine_specs for _ in range(spec.count)]
            if not expanded:
                raise ConfigurationError("machine_specs expands to an empty fleet")
        else:
            expanded = [machine_spec or MachineSpec()] * n_machines
        self.machines = [
            Machine(f"m{i:03d}", spec) for i, spec in enumerate(expanded)
        ]
        self.vms = list(vms)
        self.policy = policy
        self.dvfs = dvfs
        self.epoch_s = check_positive(epoch_s, "epoch_s")
        self.repack_every = repack_every
        self.migration_model = migration
        self.power_budget_w = power_budget_w
        if qos != "none":
            from ..qos.fleet import FleetQos

            self.fleet_qos: "FleetQos | None" = FleetQos(qos, epoch_s=self.epoch_s)
        else:
            self.fleet_qos = None
        self.stats: list[EpochStats] = []
        self.events: list[MigrationEvent] = []
        self._host_stats: list[dict[str, Any]] = []
        self._domain_stats: list[dict[str, Any]] = []
        self._time = 0.0
        self._epoch_index = 0
        self.total_migrations = 0

    # ------------------------------------------------------------------ run

    def run(self, duration: float) -> list[EpochStats]:
        """Advance the fleet *duration* seconds; returns the epoch stats."""
        check_positive(duration, "duration")
        epochs = int(round(duration / self.epoch_s))
        for _ in range(epochs):
            self._run_one_epoch()
        return self.stats

    def _plan_epoch(self) -> tuple[EpochPlan, list[MigrationEvent]]:
        """Consult the policy and execute its placement decision."""
        if isinstance(self.policy, OrchestrationPolicy):
            plan = self.policy.plan(
                self.machines,
                self.vms,
                time=self._time,
                epoch_index=self._epoch_index,
                epoch_s=self.epoch_s,
                dvfs=self.dvfs,
            )
            events = (
                [] if plan.assignment is None else self._apply_assignment(plan.assignment)
            )
            # Machines the plan leaves empty power down *before* serving:
            # an orchestration decision takes effect this epoch, not after
            # one epoch of idle burn.  Hosts party to one of this epoch's
            # migrations stay on through it — a drained source still burns
            # CPU sending dirty pages — and power off next epoch.  (Legacy
            # callables keep the old post-epoch shutdown so their fleets
            # behave bit-identically.)
            migrating = {event.source for event in events} | {
                event.dest for event in events
            }
            for machine in self.machines:
                if machine.name not in migrating:
                    machine.power_off_if_empty()
            return plan, events
        # Legacy callable: clear-and-replace every repack interval, with
        # migrations recovered from the assignment diff (as before).
        if self._epoch_index % self.repack_every != 0:
            return EpochPlan(), []
        before = current_assignment(self.machines)
        self.policy(self.machines, self.vms)
        after = current_assignment(self.machines)
        events = [
            MigrationEvent(time=self._time, vm=name, source=before[name], dest=machine)
            for name, machine in sorted(after.items())
            if name in before and before[name] != machine
        ]
        return EpochPlan(), events

    def _apply_assignment(self, desired: Mapping[str, str]) -> list[MigrationEvent]:
        """Move the fleet to *desired*; returns the executed migrations.

        Placements of brand-new VMs are not migrations (nothing moved);
        only previously-placed VMs changing hosts are counted and priced.
        """
        machines = {machine.name: machine for machine in self.machines}
        vms = {vm.name: vm for vm in self.vms}
        unknown_vms = sorted(set(desired) - set(vms))
        if unknown_vms:
            raise ConfigurationError(
                f"policy assigned unknown VM(s): {', '.join(unknown_vms)}"
            )
        missing = sorted(set(vms) - set(desired))
        if missing:
            raise ConfigurationError(
                f"policy assignment leaves VM(s) unplaced: {', '.join(missing)}"
            )
        unknown_machines = sorted(set(desired.values()) - set(machines))
        if unknown_machines:
            raise ConfigurationError(
                f"policy assigned unknown machine(s): {', '.join(unknown_machines)}"
            )
        before = current_assignment(self.machines)
        moves = [
            (name, desired[name])
            for name in sorted(desired)
            if before.get(name) != desired[name]
        ]
        # Evict every mover first so swaps never transiently overflow memory.
        for name, _ in moves:
            source = before.get(name)
            if source is not None:
                machines[source].evict(vms[name])
        for name, dest in moves:
            machines[dest].place(vms[name])
        return [
            MigrationEvent(time=self._time, vm=name, source=before[name], dest=dest)
            for name, dest in moves
            if name in before
        ]

    def _run_one_epoch(self) -> None:
        epoch_start = self._time
        plan, events = self._plan_epoch()
        self.events.extend(events)
        self.total_migrations += len(events)
        trace = _obs.TRACER
        if trace is not None:
            for event in events:
                trace.migration(event.time, event.vm, event.source, event.dest)
        extra: dict[str, float] = {}
        downtime_loss = 0.0
        if self.migration_model is not None and events:
            overhead = self.migration_model.host_overhead_percent(self.epoch_s)
            blackout = self.migration_model.downtime_fraction(self.epoch_s)
            vms = {vm.name: vm for vm in self.vms}
            for event in events:
                extra[event.source] = extra.get(event.source, 0.0) + overhead
                extra[event.dest] = extra.get(event.dest, 0.0) + overhead
                downtime_loss += vms[event.vm].demand_at(self._time) * blackout
        energy_before = self.fleet_energy_joules
        demand_total = 0.0
        served_total = 0.0
        for machine in self.machines:
            demand, served = machine.run_epoch(
                self._time,
                self.epoch_s,
                dvfs=self.dvfs,
                extra_demand_percent=extra.get(machine.name, 0.0),
                freq_floor_mhz=plan.freq_floors.get(machine.name),
                freq_ceiling_mhz=plan.freq_ceilings.get(machine.name),
            )
            demand_total += demand
            served_total += served
            if self.fleet_qos is not None:
                lc_present = any(vm.service_class == "lc" for vm in machine.vms)
                fraction = self.fleet_qos.observe(
                    self._time, machine.name, demand, served, lc_present
                )
                if fraction != machine.be_quota_fraction and trace is not None:
                    shortfall = (demand - served) / demand if demand > 0.0 else 0.0
                    trace.qos_decision(
                        self._time,
                        self.fleet_qos.kind,
                        "throttle" if fraction < machine.be_quota_fraction else "restore",
                        machine.name,
                        self.fleet_qos.stats.quota_level,
                        fraction,
                        shortfall,
                    )
                machine.be_quota_fraction = fraction
            machine.power_off_if_empty()
        served_total = max(0.0, served_total - downtime_loss)
        epoch_energy = self.fleet_energy_joules - energy_before
        self._time += self.epoch_s
        self._epoch_index += 1
        for machine in self.machines:
            self._host_stats.append(
                {
                    "time": self._time,
                    "machine": machine.name,
                    "powered_on": machine.powered_on,
                    "vms": len(machine.vms),
                    "freq_mhz": machine.freq_mhz,
                    "util": machine.last_util,
                    "power_w": machine.last_power_w,
                }
            )
            if machine.is_heterogeneous:
                if trace is not None:
                    for record in machine.domain_records():
                        trace.domain_freq(
                            epoch_start,
                            machine.name,
                            record["domain"],
                            record["freq_mhz"],
                            record["power_w"],
                        )
                for record in machine.domain_records():
                    self._domain_stats.append(
                        {"time": self._time, "machine": machine.name, **record}
                    )
        stat = EpochStats(
            time=self._time,
            machines_on=sum(1 for machine in self.machines if machine.powered_on),
            demand_percent=demand_total,
            served_percent=served_total,
            energy_joules=epoch_energy,
            migrations=len(events),
            power_w=epoch_energy / self.epoch_s,
        )
        self.stats.append(stat)
        if trace is not None:
            trace.epoch(
                epoch_start,
                self.epoch_s,
                self._epoch_index - 1,
                {
                    "machines_on": stat.machines_on,
                    "power_w": stat.power_w,
                    "migrations": stat.migrations,
                    "sla_fraction": stat.sla_fraction,
                },
            )
        metrics = _obs.METRICS
        if metrics is not None:
            metrics.inc("cluster.epochs_run")
            metrics.inc("cluster.migrations_executed", len(events))
            metrics.record_max("cluster.peak_power_w", stat.power_w)

    def _assignment(self) -> dict[str, str]:
        return current_assignment(self.machines)

    # -------------------------------------------------------------- queries

    @property
    def fleet_energy_joules(self) -> float:
        """Total energy across the fleet so far."""
        return sum(machine.energy_joules for machine in self.machines)

    @property
    def energy_kwh(self) -> float:
        """Total fleet energy in kWh (the datacenter-scale unit)."""
        return self.fleet_energy_joules / 3.6e6

    @property
    def mean_sla_fraction(self) -> float:
        """Mean per-epoch SLA delivery over the run."""
        self._require_run()
        return sum(stat.sla_fraction for stat in self.stats) / len(self.stats)

    @property
    def mean_machines_on(self) -> float:
        """Mean number of powered-on machines over the run."""
        self._require_run()
        return sum(stat.machines_on for stat in self.stats) / len(self.stats)

    @property
    def sla_violations(self) -> int:
        """Epochs in which some demanded capacity went unserved."""
        return sum(1 for stat in self.stats if stat.sla_violated)

    @property
    def peak_power_w(self) -> float:
        """The highest per-epoch mean fleet power of the run."""
        self._require_run()
        return max(stat.power_w for stat in self.stats)

    def _require_run(self) -> None:
        if not self.stats:
            raise ConfigurationError("run() the simulation first")

    # ---------------------------------------------------------- telemetry

    def epoch_records(self) -> list[dict[str, Any]]:
        """One flat dict per epoch, for ``records_to_csv`` / JSON export."""
        return [
            {
                "epoch": index,
                "time": stat.time,
                "machines_on": stat.machines_on,
                "demand_percent": stat.demand_percent,
                "served_percent": stat.served_percent,
                "sla_fraction": stat.sla_fraction,
                "energy_joules": stat.energy_joules,
                "power_w": stat.power_w,
                "migrations": stat.migrations,
            }
            for index, stat in enumerate(self.stats)
        ]

    def host_records(self) -> list[dict[str, Any]]:
        """One flat dict per (epoch, host): utilisation, frequency, power."""
        return [dict(record) for record in self._host_stats]

    def migration_records(self) -> list[dict[str, Any]]:
        """One flat dict per executed migration, in execution order."""
        return [event.record() for event in self.events]

    def domain_records(self) -> list[dict[str, Any]]:
        """One flat dict per (epoch, host, frequency domain).

        Empty for homogeneous fleets: single-domain machines report through
        :meth:`host_records` alone, keeping legacy exports unchanged.
        """
        return [dict(record) for record in self._domain_stats]

    def cstate_residency(self) -> dict[str, float]:
        """Fleet-wide idle-state residency seconds, keyed by C-state name.

        Empty for fleets without C-state ladders (every legacy catalog
        part), so homogeneous metrics snapshots gain no keys.
        """
        totals: dict[str, float] = {}
        for machine in self.machines:
            for name, seconds in machine.cstate_residency().items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals


#: The historical public name; every existing call site keeps working.
ClusterSim = Orchestrator
