"""Declarative configuration for fleet-scale cluster runs.

The §2.3 consolidation ablation originally hand-built its fleet inline.
This module turns that setup into a frozen, picklable config —
:class:`ClusterScenarioConfig` — so cluster runs can be enumerated by the
sweep subsystem (:mod:`repro.sweep`) exactly like single-host
:class:`~repro.experiments.scenario.ScenarioConfig` runs: every field is an
axis a grid can vary, and :func:`run_cluster_scenario` is the one-shot
executor a worker process can call.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..cpu import catalog
from ..cpu.processor import ProcessorSpec
from ..errors import ConfigurationError
from ..sim import RngStreams
from ..workloads import SyntheticTrace, TraceLoad
from .machine import MachineSpec
from .placement import consolidate_first_fit, spread_round_robin
from .simulator import ClusterSim
from .vm import ClusterVM

#: Placement policies addressable by name from a config/grid.
POLICIES = {
    "spread": spread_round_robin,
    "consolidate": consolidate_first_fit,
}


@dataclass(frozen=True)
class ClusterScenarioConfig:
    """Parameters of a fleet run (homogeneous machines, synthetic traces).

    ``policy`` is a name from :data:`POLICIES` (``"spread"`` or
    ``"consolidate"``) so configs stay picklable and JSON-describable.
    The trace fields parameterize the per-VM
    :class:`~repro.workloads.trace.SyntheticTrace` demand.
    """

    n_machines: int = 8
    n_vms: int = 12
    policy: str = "consolidate"
    dvfs: bool = True
    duration: float = 600.0
    seed: int = 7
    processor: ProcessorSpec = field(default=catalog.CORE_I7_3770)
    machine_memory_mb: int = 16384
    vm_credit: float = 30.0
    vm_memory_mb: int = 5120
    epoch: float = 10.0
    base_percent: float = 14.0
    swing_percent: float = 8.0
    noise_percent: float = 2.0
    burst_percent: float = 10.0
    bursts: int = 1
    day_length: float = 600.0
    trace_step: float = 10.0

    def with_changes(self, **changes) -> "ClusterScenarioConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Compact human-readable label (grid cell labelling)."""
        dvfs = "+dvfs" if self.dvfs else ""
        return f"fleet({self.n_vms}vm/{self.n_machines}m:{self.policy}{dvfs})"

    @classmethod
    def coerce_field(cls, name: str, value: Any) -> Any:
        """Coerce a JSON-ish axis value for field *name* to its spec type.

        Sweep grids call this so fleet axes can come straight from JSON
        (the processor by catalog name, list values as tuples).
        """
        if name == "processor" and isinstance(value, str):
            return catalog.processor_from_name(value)
        if isinstance(value, list):
            return tuple(value)
        return value

    # ------------------------------------------------------------- serialise

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form of the whole config (processor by catalog name).

        Carries ``"kind": "cluster"`` so scenario files and the store can
        tell fleet specs from single-host
        :class:`~repro.experiments.scenario.ScenarioConfig` ones.
        """
        out: dict[str, Any] = {"kind": "cluster"}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "processor":
                value = value.name
            out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterScenarioConfig":
        """Rebuild a config from :meth:`to_dict` output or a scenario file.

        Unknown keys raise a :class:`ConfigurationError` naming the valid
        fields; the processor may be given as a catalog name.
        """
        kwargs = dict(data)
        kind = kwargs.pop("kind", "cluster")
        if kind != "cluster":
            raise ConfigurationError(
                f"not a cluster scenario spec: kind={kind!r} (expected 'cluster')"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown cluster scenario field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(f.name for f in dataclasses.fields(cls))}"
            )
        processor = kwargs.get("processor")
        if isinstance(processor, str):
            kwargs["processor"] = catalog.processor_from_name(processor)
        return cls(**kwargs)


def make_population(config: ClusterScenarioConfig) -> list[ClusterVM]:
    """The VM population: diurnal CPU traces, memory-bound footprints."""
    streams = RngStreams(config.seed)
    vms = []
    for index in range(config.n_vms):
        points = SyntheticTrace(
            base_percent=config.base_percent,
            swing_percent=config.swing_percent,
            noise_percent=config.noise_percent,
            burst_percent=config.burst_percent,
            bursts=config.bursts,
            day_length=config.day_length,
            step=config.trace_step,
        ).generate(streams.stream(f"vm{index}"))
        trace = TraceLoad(points, repeat=True)
        vms.append(
            ClusterVM(
                f"vm{index:02d}",
                credit=config.vm_credit,
                memory_mb=config.vm_memory_mb,
                demand=trace.demand_at,
            )
        )
    return vms


def build_cluster(config: ClusterScenarioConfig) -> ClusterSim:
    """Construct (but do not run) the fleet described by *config*."""
    try:
        policy = POLICIES[config.policy]
    except KeyError:
        raise ConfigurationError(
            f"unknown placement policy {config.policy!r}; "
            f"use one of: {', '.join(sorted(POLICIES))}"
        ) from None
    return ClusterSim(
        n_machines=config.n_machines,
        machine_spec=MachineSpec(
            processor=config.processor, memory_mb=config.machine_memory_mb
        ),
        vms=make_population(config),
        policy=policy,
        dvfs=config.dvfs,
        epoch=config.epoch,
    )


def run_cluster_scenario(config: ClusterScenarioConfig) -> ClusterSim:
    """Build and run the fleet to its configured duration."""
    sim = build_cluster(config)
    sim.run(config.duration)
    return sim
