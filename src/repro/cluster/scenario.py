"""Declarative configuration for fleet-scale cluster runs.

The §2.3 consolidation ablation originally hand-built its fleet inline.
This module turns that setup into a frozen, picklable config —
:class:`ClusterScenarioConfig` — so cluster runs can be enumerated by the
sweep subsystem (:mod:`repro.sweep`) exactly like single-host
:class:`~repro.experiments.scenario.ScenarioConfig` runs: every field is an
axis a grid can vary, and :func:`run_cluster_scenario` is the one-shot
executor a worker process can call.

Since the orchestration subsystem landed, a config also names its
orchestration policy (:mod:`repro.cluster.policies` registry, plus the
legacy ``"spread"``/``"consolidate-ffd"`` placement callables), prices live
migration through a :class:`~repro.cluster.migration.MigrationModel`,
optionally caps the fleet under a cluster-wide watt budget
(``power_budget_w``, the ``power-budget`` policy's input), and can draw its
VM demand from the day-shape catalog
(:mod:`repro.workloads.dayshapes`) — ``dayshapes=("diurnal-office",
"flash-crowd", ...)`` deals shapes round-robin across the population for
heterogeneous fleets.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from ..cpu import catalog
from ..cpu.processor import ProcessorSpec
from ..errors import ConfigurationError
from ..sim import RngStreams
from ..workloads import SyntheticTrace, TraceLoad
from ..workloads.dayshapes import dayshape_points, require_dayshape
from .machine import MachineSpec
from .migration import DEFAULT_MIGRATION, MigrationModel
from .orchestrator import Orchestrator
from .placement import consolidate_first_fit, spread_round_robin
from .policies import make_policy, POLICY_REGISTRY, policy_names
from .vm import ClusterVM

#: Legacy placement callables still addressable by name (clear-and-replace
#: repacking, no frequency steering).  ``"consolidate"`` now names the
#: hysteretic orchestration policy; the old every-epoch FFD packer stays
#: reachable as ``"consolidate-ffd"``.
LEGACY_POLICIES: dict[str, Callable] = {
    "spread": spread_round_robin,
    "consolidate-ffd": consolidate_first_fit,
}

#: Every policy name a config may carry (orchestration registry + legacy).
POLICIES = {**{name: cls for name, cls in POLICY_REGISTRY.items()}, **LEGACY_POLICIES}


@dataclass(frozen=True)
class ClusterScenarioConfig:
    """Parameters of a fleet run (machine groups, synthetic traces).

    ``policy`` is a name from :data:`POLICIES` (the orchestration registry
    — ``static``, ``consolidate``, ``load-balance``, ``power-budget`` — or
    a legacy placement callable) so configs stay picklable and
    JSON-describable.  The trace fields parameterize the per-VM
    :class:`~repro.workloads.trace.SyntheticTrace` demand; ``dayshapes``
    replaces them with named catalog shapes dealt round-robin across VMs.

    The fleet's hardware is declared through ``machines`` — a tuple of
    :class:`~repro.cluster.machine.MachineSpec` groups (count + processor +
    memory each), so fleets can mix host kinds (``dc-hetero``).  When
    ``machines`` is empty, the legacy homogeneous triple (``n_machines`` +
    ``processor`` + ``machine_memory_mb``) is expanded by
    :meth:`effective_machines` into the equivalent one-group form — the
    same compatibility pattern as the scenario-spec ``effective_guests`` —
    and ``to_dict`` omits the empty field, so pre-heterogeneity specs and
    their store keys serialise byte-identically.  When ``machines`` is
    set, the legacy triple is ignored.
    """

    n_machines: int = 8
    n_vms: int = 12
    policy: str = "consolidate"
    dvfs: bool = True
    duration: float = 600.0
    seed: int = 7
    processor: ProcessorSpec = field(default=catalog.CORE_I7_3770)
    machine_memory_mb: int = 16384
    vm_credit: float = 30.0
    vm_memory_mb: int = 5120
    epoch_s: float = 10.0
    base_percent: float = 14.0
    swing_percent: float = 8.0
    noise_percent: float = 2.0
    burst_percent: float = 10.0
    bursts: int = 1
    day_length: float = 600.0
    trace_step: float = 10.0
    dayshapes: tuple[str, ...] = ()
    dayshape_scale: float = 1.0
    migration: MigrationModel = field(default=DEFAULT_MIGRATION)
    power_budget_w: float | None = None
    #: Fleet QoS controller kind (``none`` installs no controller).
    qos: str = "none"
    #: The first ``lc_vms`` VMs of the population are latency-critical.
    lc_vms: int = 0
    #: Machine groups; empty = the legacy homogeneous triple above.
    machines: tuple[MachineSpec, ...] = ()
    #: Heterogeneity placement preference (``"efficiency"`` packs cheap
    #: machines first, ``"performance"`` books big ones first); ``""``
    #: keeps each policy's own default.  A sweepable axis on mixed fleets.
    placement: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.migration, Mapping):
            object.__setattr__(
                self, "migration", MigrationModel.from_dict(self.migration)
            )
        if not isinstance(self.dayshapes, tuple):
            object.__setattr__(self, "dayshapes", tuple(self.dayshapes))
        if not isinstance(self.machines, tuple) or any(
            isinstance(group, Mapping) for group in self.machines
        ):
            object.__setattr__(
                self,
                "machines",
                tuple(
                    MachineSpec.from_dict(group) if isinstance(group, Mapping) else group
                    for group in self.machines
                ),
            )
        for shape in self.dayshapes:
            require_dayshape(shape)
        if self.placement not in ("", "efficiency", "performance"):
            raise ConfigurationError(
                f"unknown placement preference {self.placement!r}; "
                f"use efficiency/performance (or '' for the policy default)"
            )
        if self.qos not in ("none", "naive", "ladder"):
            raise ConfigurationError(
                f"unknown fleet QoS kind {self.qos!r}; use none/naive/ladder"
            )
        if not 0 <= self.lc_vms <= self.n_vms:
            raise ConfigurationError(
                f"lc_vms must be in [0, n_vms={self.n_vms}], got {self.lc_vms}"
            )

    def with_changes(self, **changes) -> "ClusterScenarioConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def effective_machines(self) -> tuple[MachineSpec, ...]:
        """The machine groups this config describes.

        ``machines`` when declared; otherwise the legacy homogeneous
        triple expanded to one group — the ``effective_guests`` pattern,
        so every consumer reasons over one declarative surface.
        """
        if self.machines:
            return self.machines
        return (
            MachineSpec(
                processor=self.processor,
                memory_mb=self.machine_memory_mb,
                count=self.n_machines,
            ),
        )

    @property
    def total_machines(self) -> int:
        """Fleet size after group expansion."""
        return sum(group.count for group in self.effective_machines())

    def describe(self) -> str:
        """Compact human-readable label (grid cell labelling)."""
        dvfs = "+dvfs" if self.dvfs else ""
        budget = (
            f"@{self.power_budget_w:g}W" if self.power_budget_w is not None else ""
        )
        kinds = f"x{len(self.machines)}kinds" if self.machines else ""
        return (
            f"fleet({self.n_vms}vm/{self.total_machines}m{kinds}:"
            f"{self.policy}{dvfs}{budget})"
        )

    @classmethod
    def coerce_field(cls, name: str, value: Any) -> Any:
        """Coerce a JSON-ish axis value for field *name* to its spec type.

        Sweep grids call this so fleet axes can come straight from JSON
        (the processor by catalog name, the migration model as a mapping,
        machine groups as lists of mappings, list values as tuples).
        """
        if name == "processor" and isinstance(value, str):
            return catalog.processor_from_name(value)
        if name == "migration" and isinstance(value, Mapping):
            return MigrationModel.from_dict(value)
        if name == "machines" and isinstance(value, (list, tuple)):
            return tuple(
                MachineSpec.from_dict(group) if isinstance(group, Mapping) else group
                for group in value
            )
        if isinstance(value, list):
            return tuple(value)
        return value

    # ------------------------------------------------------------- serialise

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form of the whole config (processor by catalog name).

        Carries ``"kind": "cluster"`` so scenario files and the store can
        tell fleet specs from single-host
        :class:`~repro.experiments.scenario.ScenarioConfig` ones.
        """
        out: dict[str, Any] = {"kind": "cluster"}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "processor":
                value = value.name
            elif spec_field.name == "migration":
                value = value.to_dict()
            elif spec_field.name == "dayshapes":
                value = list(value)
            elif spec_field.name == "qos" and self.qos == "none":
                # Omit-when-default: pre-QoS specs (and their store keys)
                # serialise byte-identically.
                continue
            elif spec_field.name == "lc_vms" and self.lc_vms == 0:
                continue
            elif spec_field.name == "machines":
                if not self.machines:
                    # Omit-when-default: pre-heterogeneity specs (and their
                    # store keys) serialise byte-identically.
                    continue
                value = [group.to_dict() for group in self.machines]
            elif spec_field.name == "placement" and self.placement == "":
                continue
            out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterScenarioConfig":
        """Rebuild a config from :meth:`to_dict` output or a scenario file.

        Unknown keys raise a :class:`ConfigurationError` naming the valid
        fields; the processor may be given as a catalog name, the migration
        model as a mapping, and ``epoch`` is accepted as a legacy alias of
        ``epoch_s``.
        """
        kwargs = dict(data)
        kind = kwargs.pop("kind", "cluster")
        if kind != "cluster":
            raise ConfigurationError(
                f"not a cluster scenario spec: kind={kind!r} (expected 'cluster')"
            )
        if "epoch" in kwargs and "epoch_s" not in kwargs:
            kwargs["epoch_s"] = kwargs.pop("epoch")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown cluster scenario field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(f.name for f in dataclasses.fields(cls))}"
            )
        processor = kwargs.get("processor")
        if isinstance(processor, str):
            kwargs["processor"] = catalog.processor_from_name(processor)
        machines = kwargs.get("machines")
        if machines is not None:
            kwargs["machines"] = tuple(
                MachineSpec.from_dict(group) if isinstance(group, Mapping) else group
                for group in machines
            )
        return cls(**kwargs)


def make_population(config: ClusterScenarioConfig) -> list[ClusterVM]:
    """The VM population: diurnal CPU traces, memory-bound footprints.

    With ``dayshapes`` set, VM *i* draws the shape ``dayshapes[i % len]``
    from the catalog (a heterogeneous fleet); otherwise every VM replays
    the config's :class:`~repro.workloads.trace.SyntheticTrace` parameters.
    Either way each VM has its own named RNG stream, so populations are
    deterministic per seed and adding VMs never perturbs existing ones.
    """
    streams = RngStreams(config.seed)
    vms = []
    for index in range(config.n_vms):
        rng = streams.stream(f"vm{index}")
        if config.dayshapes:
            shape = config.dayshapes[index % len(config.dayshapes)]
            points = dayshape_points(
                shape,
                rng,
                day_length=config.day_length,
                step=config.trace_step,
                scale=config.dayshape_scale,
            )
        else:
            points = SyntheticTrace(
                base_percent=config.base_percent,
                swing_percent=config.swing_percent,
                noise_percent=config.noise_percent,
                burst_percent=config.burst_percent,
                bursts=config.bursts,
                day_length=config.day_length,
                step=config.trace_step,
            ).generate(rng)
        trace = TraceLoad(points, repeat=True)
        vms.append(
            ClusterVM(
                f"vm{index:02d}",
                credit=config.vm_credit,
                memory_mb=config.vm_memory_mb,
                demand=trace.demand_at,
                service_class="lc" if index < config.lc_vms else "be",
            )
        )
    return vms


def build_cluster(config: ClusterScenarioConfig) -> Orchestrator:
    """Construct (but do not run) the fleet described by *config*."""
    if config.policy in LEGACY_POLICIES:
        policy = LEGACY_POLICIES[config.policy]
    elif config.policy in POLICY_REGISTRY:
        policy = make_policy(
            config.policy,
            power_budget_w=config.power_budget_w,
            placement=config.placement or None,
        )
    else:
        raise ConfigurationError(
            f"unknown placement policy {config.policy!r}; "
            f"use one of: {', '.join(sorted(POLICIES))}"
        )
    return Orchestrator(
        n_machines=config.total_machines,
        machine_specs=config.effective_machines(),
        vms=make_population(config),
        policy=policy,
        dvfs=config.dvfs,
        epoch_s=config.epoch_s,
        migration=config.migration,
        power_budget_w=config.power_budget_w,
        qos=config.qos,
    )


def run_cluster_scenario(config: ClusterScenarioConfig) -> Orchestrator:
    """Build and run the fleet to its configured duration."""
    sim = build_cluster(config)
    sim.run(config.duration)
    return sim


def orchestration_policy_names() -> tuple[str, ...]:
    """Policy names ``cluster compare`` iterates (the orchestration registry)."""
    return policy_names()
