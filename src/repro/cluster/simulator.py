"""Compatibility shim: the epoch loop now lives in
:mod:`repro.cluster.orchestrator`.

``ClusterSim`` grew into the epoch-driven :class:`Orchestrator` (pluggable
policies, live migration with a cost model, per-host telemetry); this
module keeps the historical import path alive for callers that still do
``from repro.cluster.simulator import ClusterSim, EpochStats``.
"""

from __future__ import annotations

from .orchestrator import ClusterSim, EpochStats, Orchestrator, Policy

__all__ = ["ClusterSim", "EpochStats", "Orchestrator", "Policy"]
