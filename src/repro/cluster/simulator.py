"""Epoch-driven cluster simulation.

Each epoch: (re)place VMs per the policy, serve every machine's demand at
its (DVFS-chosen or pinned) P-state, integrate energy, and record fleet
statistics.  Re-packing between epochs counts migrations, so policies can
be compared on churn as well as energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import ConfigurationError
from ..units import check_positive
from .machine import Machine, MachineSpec
from .vm import ClusterVM

#: A placement policy: (machines, vms) -> machines powered on.
Policy = Callable[[Sequence[Machine], Sequence[ClusterVM]], int]


@dataclass(frozen=True)
class EpochStats:
    """Fleet statistics for one epoch."""

    time: float
    machines_on: int
    demand_percent: float
    served_percent: float
    energy_joules: float
    migrations: int

    @property
    def sla_fraction(self) -> float:
        """Served / demanded (1.0 when the fleet kept every promise)."""
        if self.demand_percent <= 0.0:
            return 1.0
        return self.served_percent / self.demand_percent


class ClusterSim:
    """A fleet of machines + a VM population + a placement policy.

    Parameters
    ----------
    n_machines:
        Fleet size.
    machine_spec:
        Hardware of every machine (homogeneous fleet, like the paper's
        Grid'5000 clusters).
    vms:
        The VM population.
    policy:
        Placement policy (see :mod:`repro.cluster.placement`).
    dvfs:
        Whether machines scale frequency to their load (Listing 1.1) or pin
        the maximum.
    epoch:
        Seconds per epoch (placement + frequency decisions cadence).
    repack_every:
        Re-run the policy every N epochs (1 = every epoch).
    """

    def __init__(
        self,
        *,
        n_machines: int,
        vms: Sequence[ClusterVM],
        policy: Policy,
        dvfs: bool,
        machine_spec: MachineSpec | None = None,
        epoch: float = 10.0,
        repack_every: int = 1,
    ) -> None:
        if n_machines < 1:
            raise ConfigurationError(f"need at least one machine, got {n_machines}")
        if repack_every < 1:
            raise ConfigurationError(f"repack_every must be >= 1, got {repack_every}")
        names = {vm.name for vm in vms}
        if len(names) != len(vms):
            raise ConfigurationError("duplicate VM names in the population")
        self.machines = [
            Machine(f"m{i:03d}", machine_spec or MachineSpec()) for i in range(n_machines)
        ]
        self.vms = list(vms)
        self.policy = policy
        self.dvfs = dvfs
        self.epoch = check_positive(epoch, "epoch")
        self.repack_every = repack_every
        self.stats: list[EpochStats] = []
        self._time = 0.0
        self._epoch_index = 0
        self.total_migrations = 0

    # ------------------------------------------------------------------ run

    def run(self, duration: float) -> list[EpochStats]:
        """Advance the fleet *duration* seconds; returns the epoch stats."""
        check_positive(duration, "duration")
        epochs = int(round(duration / self.epoch))
        for _ in range(epochs):
            self._run_one_epoch()
        return self.stats

    def _run_one_epoch(self) -> None:
        migrations = 0
        if self._epoch_index % self.repack_every == 0:
            before = self._assignment()
            self.policy(self.machines, self.vms)
            after = self._assignment()
            migrations = sum(
                1
                for name, machine in after.items()
                if before.get(name) is not None and before[name] != machine
            )
            self.total_migrations += migrations
        energy_before = self.fleet_energy_joules
        demand_total = 0.0
        served_total = 0.0
        for machine in self.machines:
            demand, served = machine.run_epoch(self._time, self.epoch, dvfs=self.dvfs)
            demand_total += demand
            served_total += served
            machine.power_off_if_empty()
        self._time += self.epoch
        self._epoch_index += 1
        self.stats.append(
            EpochStats(
                time=self._time,
                machines_on=sum(1 for machine in self.machines if machine.powered_on),
                demand_percent=demand_total,
                served_percent=served_total,
                energy_joules=self.fleet_energy_joules - energy_before,
                migrations=migrations,
            )
        )

    def _assignment(self) -> dict[str, str]:
        return {
            vm.name: machine.name for machine in self.machines for vm in machine.vms
        }

    # -------------------------------------------------------------- queries

    @property
    def fleet_energy_joules(self) -> float:
        """Total energy across the fleet so far."""
        return sum(machine.energy_joules for machine in self.machines)

    @property
    def mean_sla_fraction(self) -> float:
        """Mean per-epoch SLA delivery over the run."""
        if not self.stats:
            raise ConfigurationError("run() the simulation first")
        return sum(stat.sla_fraction for stat in self.stats) / len(self.stats)

    @property
    def mean_machines_on(self) -> float:
        """Mean number of powered-on machines over the run."""
        if not self.stats:
            raise ConfigurationError("run() the simulation first")
        return sum(stat.machines_on for stat in self.stats) / len(self.stats)
