"""Placement policies: spread vs memory-bound consolidation.

Both policies are *memory-feasible by construction* — a VM is only placed
where its footprint fits, which is exactly the §2.3 constraint that keeps
consolidated hosts CPU-underloaded and DVFS relevant.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ReproError
from .machine import Machine
from .vm import ClusterVM


class PlacementError(ReproError):
    """The fleet cannot host the VM set (memory-infeasible)."""


def spread_round_robin(machines: Sequence[Machine], vms: Sequence[ClusterVM]) -> int:
    """Place VMs round-robin across all machines (no consolidation).

    Models the pre-consolidation hosting centre: every machine stays on.
    Returns the number of machines used (all of them, when any VM exists).
    """
    _clear_all(machines)
    for index, vm in enumerate(sorted(vms, key=lambda v: v.name)):
        placed = False
        for offset in range(len(machines)):
            machine = machines[(index + offset) % len(machines)]
            if machine.fits(vm):
                machine.place(vm)
                placed = True
                break
        if not placed:
            raise PlacementError(
                f"VM {vm.name!r} ({vm.memory_mb} MB) fits no machine"
            )
    for machine in machines:
        machine.powered_on = True  # spread keeps the whole fleet on
    return len(machines)


def consolidate_first_fit(machines: Sequence[Machine], vms: Sequence[ClusterVM]) -> int:
    """First-fit-decreasing by memory: the classic consolidation packer.

    VMs are packed onto as few machines as memory allows; empty machines
    are switched off (the consolidation energy saving).  Returns the number
    of machines left powered on.
    """
    _clear_all(machines)
    ordered = sorted(vms, key=lambda vm: (-vm.memory_mb, vm.name))
    for vm in ordered:
        for machine in machines:
            if machine.fits(vm):
                machine.place(vm)
                break
        else:
            raise PlacementError(
                f"VM {vm.name!r} ({vm.memory_mb} MB) fits no machine"
            )
    used = 0
    for machine in machines:
        if machine.vms:
            machine.powered_on = True
            used += 1
        else:
            machine.powered_on = False
    return used


def _clear_all(machines: Sequence[Machine]) -> None:
    for machine in machines:
        machine.clear()
