"""Live-migration cost model: downtime plus dirty-page copy overhead.

Moving a VM between hosts is not free, and orchestration policies that
ignore that fact look better than they are.  A :class:`MigrationModel`
prices one migration the way live migration actually costs:

* **downtime** — the stop-and-copy blackout during which the VM serves
  nothing (seconds of lost service, charged against the epoch's served
  demand);
* **copy overhead** — the CPU the dirty-page copy burns on *both* the
  source and the destination host while the transfer runs (percent of
  max-frequency capacity, charged for ``copy_duration_s`` of the epoch).

The orchestrator charges these costs for every executed migration, so
policies are compared on churn as well as energy — a policy that repacks
the fleet every epoch pays for it in SLA and watts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import ConfigurationError
from ..units import check_non_negative


@dataclass(frozen=True)
class MigrationModel:
    """Cost of one live migration (JSON-round-trippable spec).

    Parameters
    ----------
    downtime_s:
        Stop-and-copy blackout: seconds the migrating VM serves nothing.
    copy_overhead_percent:
        CPU the pre-copy burns on the source and destination hosts, in
        percent of max-frequency capacity, while the copy runs.
    copy_duration_s:
        How long the copy load lasts (capped at one epoch when charged).
    """

    downtime_s: float = 0.3
    copy_overhead_percent: float = 8.0
    copy_duration_s: float = 10.0

    def __post_init__(self) -> None:
        check_non_negative(self.downtime_s, "downtime_s")
        check_non_negative(self.copy_overhead_percent, "copy_overhead_percent")
        check_non_negative(self.copy_duration_s, "copy_duration_s")

    # ------------------------------------------------------------- charging

    def host_overhead_percent(self, epoch_s: float) -> float:
        """Mean extra CPU percent one migration adds to a host this epoch.

        The copy runs for ``min(copy_duration_s, epoch_s)`` seconds at
        ``copy_overhead_percent``; averaged over the epoch that is the flat
        demand surcharge the source and destination hosts each absorb.
        """
        if epoch_s <= 0.0:
            return 0.0
        return self.copy_overhead_percent * min(self.copy_duration_s, epoch_s) / epoch_s

    def downtime_fraction(self, epoch_s: float) -> float:
        """Fraction of the epoch the migrating VM is blacked out."""
        if epoch_s <= 0.0:
            return 0.0
        return min(self.downtime_s, epoch_s) / epoch_s

    def describe(self) -> str:
        """Compact human-readable label (grid cell labelling)."""
        return (
            f"mig({self.downtime_s:g}s+{self.copy_overhead_percent:g}%"
            f"x{self.copy_duration_s:g}s)"
        )

    # ------------------------------------------------------------ serialise

    def to_dict(self) -> dict[str, float]:
        """JSON-able form; :meth:`from_dict` round-trips it exactly."""
        return {
            "downtime_s": self.downtime_s,
            "copy_overhead_percent": self.copy_overhead_percent,
            "copy_duration_s": self.copy_duration_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MigrationModel":
        """Rebuild a model from :meth:`to_dict` output or a scenario file."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown migration model field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        return cls(**data)


#: Default pricing: sub-second blackout, a modest copy surcharge.
DEFAULT_MIGRATION = MigrationModel()

#: Free migrations — the pre-orchestration behaviour, and the control for
#: "how much does churn cost" ablations.
FREE_MIGRATION = MigrationModel(
    downtime_s=0.0, copy_overhead_percent=0.0, copy_duration_s=0.0
)


@dataclass(frozen=True)
class MigrationEvent:
    """One executed migration (per-epoch telemetry)."""

    time: float
    vm: str
    source: str
    dest: str

    def record(self) -> dict[str, Any]:
        """Flat dict for :func:`repro.telemetry.export.records_to_csv`."""
        return {
            "time": self.time,
            "vm": self.vm,
            "source": self.source,
            "dest": self.dest,
        }
