"""Orchestration policies: how the fleet re-evaluates itself each epoch.

An :class:`OrchestrationPolicy` is consulted by the
:class:`~repro.cluster.orchestrator.Orchestrator` at every epoch and answers
with an :class:`EpochPlan`: the VM→host assignment it wants (``None`` to
keep the current placement, so "no churn" is the explicit default) plus
per-host frequency floors and ceilings (the multi-host analogue of pinning
a cpufreq policy's ``scaling_min_freq``/``scaling_max_freq``).

Registry (:data:`POLICY_REGISTRY`, addressable by name from a
:class:`~repro.cluster.scenario.ClusterScenarioConfig`):

``static``
    Provision by *booked credit* once, never migrate.  The classic
    hosting-center baseline: SLA-safe by construction, blind to the fact
    that demand rarely reaches the booking.
``consolidate``
    Demand-aware incremental packing with power-off/on hysteresis:
    overloaded hosts spill immediately, but a host is only drained and
    powered down after ``hysteresis_epochs`` consecutive epochs agree the
    fleet fits on fewer machines — so a single quiet epoch never powers a
    host down just to drag it (and a batch of migrations) back up.
``load-balance``
    Spread demand evenly over the whole fleet, a bounded number of
    hot-to-cold migrations per epoch, triggered only when the hottest and
    coldest hosts drift more than ``imbalance_percent`` apart.
    SLA-friendliest, energy-worst.
``power-budget``
    Multi-host PAS: ``consolidate`` placement plus a cluster-wide watt
    cap, enforced by steering per-host frequency floors/ceilings.  Each
    epoch every used host starts at the P-state Listing 1.1 picks for its
    demand; while the fleet's predicted package power exceeds the budget,
    the highest-drawing host is stepped down one P-state.  Delivered
    utilisation can only be lower than the demand the prediction assumes,
    so the delivered per-epoch fleet power never exceeds the cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..errors import ConfigurationError
from ..units import check_positive
from .machine import Machine
from .placement import PlacementError
from .vm import ClusterVM

#: A VM→host assignment: ``{vm name: machine name}``.
Assignment = Mapping[str, str]


def current_assignment(machines: Sequence[Machine]) -> dict[str, str]:
    """The live VM→host assignment of a fleet."""
    return {vm.name: machine.name for machine in machines for vm in machine.vms}


# --------------------------------------------------------- placement orders


def efficiency_order(machines: Sequence[Machine]) -> list[Machine]:
    """Machines cheapest-to-run first (full-load watts per capacity percent).

    Efficiency-packing: fill the big.LITTLE blades before waking an i7.
    Stable on homogeneous fleets — equal efficiency everywhere, so the
    original (name) order survives and legacy placements are unchanged.
    """
    indexed = sorted(
        enumerate(machines),
        key=lambda pair: (pair[1].efficiency_w_per_percent, pair[0]),
    )
    return [machine for _, machine in indexed]


def performance_order(machines: Sequence[Machine]) -> list[Machine]:
    """Machines highest-capacity first (performance-bursting).

    Stable on homogeneous fleets for the same reason as
    :func:`efficiency_order`.
    """
    indexed = sorted(
        enumerate(machines),
        key=lambda pair: (-pair[1].capacity_percent, pair[0]),
    )
    return [machine for _, machine in indexed]


#: The heterogeneity-aware placement preferences policies accept, by name.
PLACEMENT_ORDERS: dict[str, Callable[[Sequence[Machine]], list[Machine]]] = {
    "efficiency": efficiency_order,
    "performance": performance_order,
}


def _placement_order(
    placement: str | None, default: str
) -> Callable[[Sequence[Machine]], list[Machine]]:
    name = default if placement is None else placement
    if name not in PLACEMENT_ORDERS:
        raise ConfigurationError(
            f"unknown placement preference {name!r}; "
            f"use one of: {', '.join(PLACEMENT_ORDERS)}"
        )
    return PLACEMENT_ORDERS[name]


@dataclass
class EpochPlan:
    """What a policy wants done before the fleet serves one epoch.

    ``assignment=None`` keeps the current placement (zero migrations);
    floors/ceilings are MHz bounds per machine name, applied after the
    machine's own DVFS choice.
    """

    assignment: Assignment | None = None
    freq_floors: Mapping[str, int] = field(default_factory=dict)
    freq_ceilings: Mapping[str, int] = field(default_factory=dict)


class OrchestrationPolicy:
    """Base class: re-evaluated by the orchestrator every epoch."""

    #: Registry name (set by subclasses).
    name = "abstract"

    def plan(
        self,
        machines: Sequence[Machine],
        vms: Sequence[ClusterVM],
        *,
        time: float,
        epoch_index: int,
        epoch_s: float,
        dvfs: bool,
    ) -> EpochPlan:
        """The plan for the epoch starting at *time*."""
        raise NotImplementedError


# ------------------------------------------------------------------ packing


def pack_first_fit(
    machines: Sequence[Machine],
    vms: Sequence[ClusterVM],
    weight: Callable[[ClusterVM], float],
    *,
    limit_percent: float,
) -> dict[str, str]:
    """First-fit-decreasing by *weight* under memory + CPU-share limits.

    VMs are sorted by descending weight (name-tiebroken) and placed on the
    first machine where the memory footprint fits and the accumulated
    weight plus the hypervisor overhead stays within *limit_percent* of
    that machine's max-frequency capacity (its ``capacity_percent``, so a
    smaller big.LITTLE blade admits proportionally less than an i7).  A VM
    whose weight alone exceeds the limit is still placed — alone on an
    empty machine — so overloads degrade to clipped service rather than
    unplaceable fleets.  Machines are tried in the order given: pass an
    :func:`efficiency_order` / :func:`performance_order` view to steer
    heterogeneous packing.
    """
    loads: dict[str, float] = {machine.name: 0.0 for machine in machines}
    free_mb: dict[str, int] = {machine.name: machine.spec.memory_mb for machine in machines}
    assignment: dict[str, str] = {}
    for vm in sorted(vms, key=lambda v: (-weight(v), v.name)):
        share = weight(vm)
        placed = False
        for machine in machines:
            if vm.memory_mb > free_mb[machine.name]:
                continue
            budget = (
                limit_percent * (machine.capacity_percent / 100.0)
                - machine.spec.overhead_percent
            )
            if loads[machine.name] + share > budget and loads[machine.name] > 0.0:
                continue
            assignment[vm.name] = machine.name
            loads[machine.name] += share
            free_mb[machine.name] -= vm.memory_mb
            placed = True
            break
        if not placed:
            raise PlacementError(
                f"VM {vm.name!r} ({vm.memory_mb} MB) fits no machine"
            )
    return assignment


def pack_balanced(
    machines: Sequence[Machine],
    vms: Sequence[ClusterVM],
    weight: Callable[[ClusterVM], float],
) -> dict[str, str]:
    """Worst-fit by *weight*: each VM goes to the least-loaded feasible host.

    Load is measured relative to each machine's capacity, so a half-full
    big.LITTLE blade is "hotter" than a half-full i7 of twice its size.
    """
    loads: dict[str, float] = {machine.name: 0.0 for machine in machines}
    free_mb: dict[str, int] = {machine.name: machine.spec.memory_mb for machine in machines}
    assignment: dict[str, str] = {}
    for vm in sorted(vms, key=lambda v: (-weight(v), v.name)):
        feasible = [m for m in machines if vm.memory_mb <= free_mb[m.name]]
        if not feasible:
            raise PlacementError(
                f"VM {vm.name!r} ({vm.memory_mb} MB) fits no machine"
            )
        target = min(
            feasible,
            key=lambda m: (loads[m.name] / (m.capacity_percent / 100.0), m.name),
        )
        assignment[vm.name] = target.name
        loads[target.name] += weight(vm)
        free_mb[target.name] -= vm.memory_mb
    return assignment


def _demands(vms: Sequence[ClusterVM], time: float) -> dict[str, float]:
    return {vm.name: vm.demand_at(time) for vm in vms}


def _hosts_used(assignment: Assignment) -> int:
    return len(set(assignment.values()))


class _FleetState:
    """A mutable scratch view of the fleet for incremental policies.

    Tracks per-host demand load and free memory as VMs are staged from
    host to host; ``assignment`` is the final VM→host mapping handed to
    the orchestrator (which executes only the diff).  *order* is the host
    preference used when shopping for headroom (default: name order, which
    every placement order degenerates to on a homogeneous fleet).
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        vms: Sequence[ClusterVM],
        demands: Mapping[str, float],
        *,
        order: Sequence[Machine] | None = None,
    ) -> None:
        self._machines = {machine.name: machine for machine in machines}
        self._vms = {vm.name: vm for vm in vms}
        self._demands = demands
        self._order = (
            [machine.name for machine in order]
            if order is not None
            else sorted(machine.name for machine in machines)
        )
        self.assignment = current_assignment(machines)
        self._loads: dict[str, float] = {name: 0.0 for name in self._machines}
        self._capacity_scale: dict[str, float] = {
            name: machine.capacity_percent / 100.0
            for name, machine in self._machines.items()
        }
        self._free_mb: dict[str, int] = {
            name: machine.spec.memory_mb for name, machine in self._machines.items()
        }
        for vm_name, machine_name in self.assignment.items():
            self._loads[machine_name] += demands[vm_name]
            self._free_mb[machine_name] -= self._vms[vm_name].memory_mb

    def hosts(self) -> list[str]:
        return list(self._machines)

    def used_hosts(self) -> int:
        return len(set(self.assignment.values()))

    def vms_on(self, machine_name: str) -> list[str]:
        return [vm for vm, host in self.assignment.items() if host == machine_name]

    def demand(self, vm_name: str) -> float:
        return self._demands[vm_name]

    def load(self, machine_name: str) -> float:
        return self._loads[machine_name]

    def relative_load(self, machine_name: str) -> float:
        """Load as a fraction of the old 100 %-host scale (hetero-aware)."""
        return self._loads[machine_name] / self._capacity_scale[machine_name]

    def capacity_scale(self, machine_name: str) -> float:
        """``capacity_percent / 100`` — exactly 1.0 on legacy hosts."""
        return self._capacity_scale[machine_name]

    def overhead(self, machine_name: str) -> float:
        return self._machines[machine_name].spec.overhead_percent

    def fits(self, vm_name: str, machine_name: str) -> bool:
        return self._vms[vm_name].memory_mb <= self._free_mb[machine_name]

    def move(self, vm_name: str, dest: str) -> None:
        source = self.assignment[vm_name]
        self._loads[source] -= self._demands[vm_name]
        self._free_mb[source] += self._vms[vm_name].memory_mb
        self._loads[dest] += self._demands[vm_name]
        self._free_mb[dest] -= self._vms[vm_name].memory_mb
        self.assignment[vm_name] = dest

    def host_with_headroom(
        self,
        vm_name: str,
        limit_percent: float,
        *,
        exclude: str,
        powered_only: bool = False,
    ) -> str | None:
        """First host that can absorb *vm_name* under *limit_percent*.

        Already-used hosts are preferred (in the state's placement order);
        an empty host — a power-on — is the fallback unless
        ``powered_only``.  The limit scales with each host's capacity, so
        a small blade fills up (proportionally) as fast as a big one.
        """
        share = self._demands[vm_name]
        used = [n for n in self._order if n != exclude and self.vms_on(n)]
        empty = [n for n in self._order if n != exclude and not self.vms_on(n)]
        for name in used + ([] if powered_only else empty):
            budget = limit_percent * self._capacity_scale[name] - self.overhead(name)
            if self.fits(vm_name, name) and self._loads[name] + share <= budget:
                return name
        return None


# ----------------------------------------------------------------- policies


class StaticPolicy(OrchestrationPolicy):
    """Credit-reserved placement computed once; zero migrations forever.

    Defaults to *performance* placement on mixed fleets: a static booking
    is sized for the worst case, so it books the biggest machines first.
    """

    name = "static"

    def __init__(
        self,
        *,
        reserve_percent: float = 100.0,
        placement: str | None = None,
    ) -> None:
        self.reserve_percent = check_positive(reserve_percent, "reserve_percent")
        self._order = _placement_order(placement, "performance")
        self._assignment: dict[str, str] | None = None

    def plan(self, machines, vms, *, time, epoch_index, epoch_s, dvfs) -> EpochPlan:
        if self._assignment is None or set(self._assignment) != {v.name for v in vms}:
            self._assignment = pack_first_fit(
                self._order(machines),
                vms,
                lambda vm: vm.credit,
                limit_percent=self.reserve_percent,
            )
        return EpochPlan(assignment=self._assignment)


class ConsolidatePolicy(OrchestrationPolicy):
    """Demand-aware incremental packing with host power-off/on hysteresis.

    Three incremental rules instead of wholesale repacking (a fresh FFD
    every epoch would migrate half the fleet on every demand wiggle):

    * **spill** — a host whose demand exceeds ``spill_percent`` sheds its
      largest VMs to hosts with headroom (powering one on if none has any)
      until it is back under ``target_percent``; immediate, no hysteresis,
      because unserved demand is an SLA breach *now*;
    * **drain** — when a first-fit packing says the fleet would fit on
      fewer hosts for ``hysteresis_epochs`` consecutive epochs, the
      least-loaded host is drained (one host per epoch) and powers off;
    * otherwise — do nothing: the explicit no-churn default.

    Defaults to *efficiency* placement on mixed fleets: consolidation
    exists to cut watts, so it fills the cheapest machines (full-load W
    per capacity percent) first and wakes the big burners last.
    """

    name = "consolidate"

    def __init__(
        self,
        *,
        target_percent: float = 75.0,
        spill_percent: float = 88.0,
        hysteresis_epochs: int = 3,
        placement: str | None = None,
    ) -> None:
        self._order = _placement_order(placement, "efficiency")
        self.target_percent = check_positive(target_percent, "target_percent")
        self.spill_percent = check_positive(spill_percent, "spill_percent")
        if spill_percent <= target_percent:
            raise ConfigurationError(
                f"spill_percent ({spill_percent}) must exceed target_percent "
                f"({target_percent}) or every epoch would both spill and drain"
            )
        if hysteresis_epochs < 1:
            raise ConfigurationError(
                f"hysteresis_epochs must be >= 1, got {hysteresis_epochs}"
            )
        self.hysteresis_epochs = hysteresis_epochs
        self._shrink_streak = 0

    def plan(self, machines, vms, *, time, epoch_index, epoch_s, dvfs) -> EpochPlan:
        demands = _demands(vms, time)
        current = current_assignment(machines)
        if set(current) != {vm.name for vm in vms}:
            # First epoch, or the VM population changed: pack from scratch.
            self._shrink_streak = 0
            return EpochPlan(
                assignment=pack_first_fit(
                    self._order(machines),
                    vms,
                    lambda vm: demands[vm.name],
                    limit_percent=self.target_percent,
                )
            )
        state = _FleetState(machines, vms, demands, order=self._order(machines))
        moved = self._spill(state)
        if moved:
            self._shrink_streak = 0
            return EpochPlan(assignment=state.assignment)
        desired_hosts = _hosts_used(
            pack_first_fit(
                self._order(machines),
                vms,
                lambda vm: demands[vm.name],
                limit_percent=self.target_percent,
            )
        )
        if desired_hosts < state.used_hosts():
            self._shrink_streak += 1
            if self._shrink_streak >= self.hysteresis_epochs and self._drain(state):
                self._shrink_streak = 0
                return EpochPlan(assignment=state.assignment)
        else:
            self._shrink_streak = 0
        return EpochPlan()

    def _spill(self, state: "_FleetState") -> bool:
        """Shed load from every host above its (capacity-scaled) threshold."""
        moved = False
        for name in sorted(state.hosts()):
            while (
                state.load(name) + state.overhead(name)
                > self.spill_percent * state.capacity_scale(name)
                and len(state.vms_on(name)) > 1
            ):
                vm = max(state.vms_on(name), key=lambda v: (state.demand(v), v))
                dest = state.host_with_headroom(
                    vm, self.target_percent, exclude=name
                )
                if dest is None:
                    break
                state.move(vm, dest)
                moved = True
        return moved

    def _drain(self, state: "_FleetState") -> bool:
        """Empty the least-loaded host into the others; False if it won't fit."""
        used = [name for name in state.hosts() if state.vms_on(name)]
        if len(used) < 2:
            return False
        coldest = min(used, key=lambda name: (state.relative_load(name), name))
        staged: list[tuple[str, str]] = []
        for vm in sorted(
            state.vms_on(coldest), key=lambda v: (-state.demand(v), v)
        ):
            dest = state.host_with_headroom(
                vm, self.target_percent, exclude=coldest, powered_only=True
            )
            if dest is None:
                return False  # the drain would not fit; keep the host on
            state.move(vm, dest)
            staged.append((vm, dest))
        return bool(staged)


class LoadBalancePolicy(OrchestrationPolicy):
    """Even demand spread over the fleet, a few migrations at a time.

    When the hottest and coldest hosts drift more than
    ``imbalance_percent`` apart, up to ``max_moves_per_epoch`` VMs hop from
    hot to cold (each the VM whose demand best fills half the gap) — the
    classic iterative balancer, bounded so one noisy epoch never reshuffles
    the whole fleet.
    """

    name = "load-balance"

    def __init__(
        self, *, imbalance_percent: float = 15.0, max_moves_per_epoch: int = 2
    ) -> None:
        self.imbalance_percent = check_positive(imbalance_percent, "imbalance_percent")
        if max_moves_per_epoch < 1:
            raise ConfigurationError(
                f"max_moves_per_epoch must be >= 1, got {max_moves_per_epoch}"
            )
        self.max_moves_per_epoch = max_moves_per_epoch

    def plan(self, machines, vms, *, time, epoch_index, epoch_s, dvfs) -> EpochPlan:
        demands = _demands(vms, time)
        current = current_assignment(machines)
        if set(current) != {vm.name for vm in vms}:
            return EpochPlan(
                assignment=pack_balanced(machines, vms, lambda vm: demands[vm.name])
            )
        state = _FleetState(machines, vms, demands)
        moved = False
        for _ in range(self.max_moves_per_epoch):
            hosts = sorted(state.hosts())
            # Capacity-relative load, so a mixed fleet balances fill level
            # rather than absolute percent (identical on legacy fleets).
            hottest = max(hosts, key=lambda name: (state.relative_load(name), name))
            coldest = min(hosts, key=lambda name: (state.relative_load(name), name))
            gap = state.relative_load(hottest) - state.relative_load(coldest)
            if gap <= self.imbalance_percent:
                break
            scale = state.capacity_scale(hottest)
            # Strictly less than the gap: a move of exactly the gap just
            # swaps which host is hot and ping-pongs the VM forever.
            candidates = [
                vm
                for vm in state.vms_on(hottest)
                if state.fits(vm, coldest) and 0.0 < state.demand(vm) / scale < gap
            ]
            if not candidates:
                break
            # The VM whose demand lands closest to half the gap evens the
            # pair best without overshooting into a reverse imbalance.
            vm = min(
                candidates,
                key=lambda v: (abs(state.demand(v) / scale - gap / 2.0), v),
            )
            state.move(vm, coldest)
            moved = True
        if moved:
            return EpochPlan(assignment=state.assignment)
        return EpochPlan()


class PowerBudgetPolicy(ConsolidatePolicy):
    """Cluster-wide watt cap via per-host frequency steering (multi-host PAS).

    Placement is inherited from :class:`ConsolidatePolicy` (packing shrinks
    the fleet's idle-power floor, which frequency steering alone cannot
    touch); on top of it, every epoch distributes the watt budget: each
    used host starts at the P-state Listing 1.1 picks for its demand, and
    while the fleet's predicted package power exceeds the budget the
    highest-drawing host is stepped down one P-state.  The resulting
    frequency is pinned per host (floor = ceiling), so delivered power is
    never above the prediction: delivered utilisation can only fall short
    of the demand the prediction assumes, and hosts touched by this
    epoch's own migrations are predicted at full utilisation so dirty-page
    copy overhead cannot push them past the admitted draw.
    """

    name = "power-budget"

    def __init__(
        self,
        *,
        budget_w: float | None,
        target_percent: float = 75.0,
        spill_percent: float = 88.0,
        hysteresis_epochs: int = 3,
        placement: str | None = None,
    ) -> None:
        if budget_w is None:
            raise ConfigurationError(
                "the power-budget policy needs a cluster watt cap; "
                "set power_budget_w on the cluster scenario config"
            )
        super().__init__(
            target_percent=target_percent,
            spill_percent=spill_percent,
            hysteresis_epochs=hysteresis_epochs,
            placement=placement,
        )
        self.budget_w = check_positive(budget_w, "budget_w")

    def plan(self, machines, vms, *, time, epoch_index, epoch_s, dvfs) -> EpochPlan:
        placement = super().plan(
            machines,
            vms,
            time=time,
            epoch_index=epoch_index,
            epoch_s=epoch_s,
            dvfs=dvfs,
        )
        current = current_assignment(machines)
        assignment = (
            placement.assignment if placement.assignment is not None else current
        )
        # Hosts a migration touches this epoch carry copy overhead the
        # demand numbers do not show; budget them at full utilisation.
        migrating = {
            host
            for vm_name, dest in assignment.items()
            if current.get(vm_name) not in (None, dest)
            for host in (current[vm_name], dest)
        }
        demands = _demands(vms, time)
        hosted: dict[str, float] = {}
        for vm_name, machine_name in assignment.items():
            hosted[machine_name] = hosted.get(machine_name, 0.0) + demands[vm_name]
        by_name = {machine.name: machine for machine in machines}
        chosen: dict[str, int] = {}
        for machine_name, demand in sorted(hosted.items()):
            machine = by_name[machine_name]
            total = demand + machine.spec.overhead_percent
            if dvfs:
                chosen[machine_name] = machine.plan_frequency(total)
            else:
                chosen[machine_name] = machine.max_freq_mhz

        def predicted(machine_name: str) -> float:
            machine = by_name[machine_name]
            total = hosted[machine_name] + machine.spec.overhead_percent
            return machine.predict_power(
                total,
                chosen[machine_name],
                full_util=machine_name in migrating,
            )

        while sum(predicted(name) for name in chosen) > self.budget_w:
            candidates = [
                name for name in chosen if chosen[name] > by_name[name].min_freq_mhz
            ]
            if not candidates:
                break  # cap infeasible even at the floor; nothing left to shed
            hottest = max(candidates, key=lambda name: (predicted(name), name))
            chosen[hottest] = by_name[hottest].step_down_choice(chosen[hottest])
        return EpochPlan(
            assignment=placement.assignment,
            freq_floors=dict(chosen),
            freq_ceilings=dict(chosen),
        )


#: Orchestration policies addressable by name, in documentation order.
POLICY_REGISTRY: dict[str, type[OrchestrationPolicy]] = {
    StaticPolicy.name: StaticPolicy,
    ConsolidatePolicy.name: ConsolidatePolicy,
    LoadBalancePolicy.name: LoadBalancePolicy,
    PowerBudgetPolicy.name: PowerBudgetPolicy,
}


def policy_names() -> tuple[str, ...]:
    """Registered orchestration policy names, in documentation order."""
    return tuple(POLICY_REGISTRY)


def make_policy(
    name: str,
    *,
    power_budget_w: float | None = None,
    placement: str | None = None,
) -> OrchestrationPolicy:
    """Instantiate the registered policy *name*.

    ``power_budget_w`` feeds the ``power-budget`` policy (required there,
    ignored elsewhere); ``placement`` overrides the policy's default
    heterogeneity preference (``"efficiency"`` / ``"performance"``,
    ``None`` keeps each policy's own default).  Unknown names raise a
    :class:`ConfigurationError` listing the registry.
    """
    if name not in POLICY_REGISTRY:
        raise ConfigurationError(
            f"unknown orchestration policy {name!r}; "
            f"use one of: {', '.join(POLICY_REGISTRY)}"
        )
    if name == PowerBudgetPolicy.name:
        return PowerBudgetPolicy(budget_w=power_budget_w, placement=placement)
    if name == LoadBalancePolicy.name:
        return LoadBalancePolicy()
    return POLICY_REGISTRY[name](placement=placement)
