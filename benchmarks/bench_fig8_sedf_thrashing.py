"""Figure 8: SEDF in default under thrashing load.

With a thrashing V20, SEDF's unused-slice redistribution lets a 20 %-credit
VM consume ~85-95 % of the machine, which pins the frequency at the maximum
— "the provider does not benefit from a frequency reduction due to V70
inactivity" (§5.6).
"""

from repro.experiments import run_fig8

from .conftest import run_and_check


def test_fig8_sedf_thrashing(benchmark):
    run_and_check(benchmark, run_fig8)
