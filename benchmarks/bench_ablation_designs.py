"""Ablation B: the three PAS implementation designs of §4.1 (ours).

in-scheduler PAS vs (1) a user-level manager chasing the stock ondemand
governor and (2) a user-level manager owning both frequency and credits.
Measured: mean and max deviation of V20's delivered absolute capacity from
its booked 20 % over the whole active window.  The in-scheduler design (the
paper's choice) tracks best; chasing an oscillating governor from user
level tracks worst.
"""

from repro.experiments import run_design_comparison

from .conftest import run_and_check


def test_ablation_design_comparison(benchmark):
    run_and_check(benchmark, run_design_comparison, unpack=False)
