"""Figure 9: PAS global loads under thrashing load.

"The PAS scheduler computes that in the first phase, V20 should be granted
33% of credit in order to compensate the low processor frequency (1600
MHz).  In the second phase, V20 is granted 20% of credit as the processor
frequency reaches the maximum value." (§5.7)
"""

from repro.experiments import run_fig9

from .conftest import run_and_check


def test_fig9_pas_global_loads(benchmark):
    run_and_check(benchmark, run_fig9)
