"""Cluster orchestration benchmark: policy comparison on the diurnal fleet.

The acceptance shape for the datacenter orchestration subsystem, on the
``dc-diurnal`` preset (24 VMs mixing all five day shapes on 10 machines):

* ``consolidate`` and ``power-budget`` both undercut ``static``
  credit-provisioning on fleet energy;
* ``power-budget`` keeps the fleet under its watt cap in *every* epoch;
* ``static`` never migrates, the dynamic policies pay for their churn in
  priced migrations yet keep the SLA above 97 %.

Runs without pytest-benchmark (plain assertions) so CI can invoke it with
a bare ``python -m pytest benchmarks/bench_cluster.py``.
"""

from repro.cluster.scenario import run_cluster_scenario
from repro.experiments import preset_config
from repro.experiments.report import ExperimentReport
from repro.sweep.metrics import cluster_metrics

from .conftest import emit

POLICIES = ("static", "consolidate", "load-balance", "power-budget")


def test_orchestration_policies_on_the_diurnal_fleet():
    config = preset_config("dc-diurnal")
    metrics = {}
    for policy in POLICIES:
        sim = run_cluster_scenario(config.with_changes(policy=policy))
        metrics[policy] = cluster_metrics(sim)

    report = ExperimentReport(
        experiment="Cluster benchmark",
        title="orchestration policies on the dc-diurnal fleet (24 VMs / 10 machines)",
    )
    for policy in POLICIES:
        m = metrics[policy]
        report.add_row(
            policy,
            "Wh / hosts / migrations / SLA / peak W",
            f"{m['energy_kwh'] * 1000:6.2f} / {m['hosts_on_mean']:5.2f} / "
            f"{m['migrations']:3d} / {m['sla_mean'] * 100:6.2f}% / "
            f"{m['power_peak_w']:6.1f}",
        )
    report.check(
        "consolidate beats static on energy",
        metrics["consolidate"]["energy_kwh"] < metrics["static"]["energy_kwh"],
    )
    report.check(
        "power-budget beats static on energy",
        metrics["power-budget"]["energy_kwh"] < metrics["static"]["energy_kwh"],
    )
    report.check(
        f"power-budget respects the {config.power_budget_w:.0f} W cap every epoch",
        metrics["power-budget"]["power_peak_w"] <= config.power_budget_w,
    )
    report.check(
        "static provisioning never migrates",
        metrics["static"]["migrations"] == 0,
    )
    report.check(
        "dynamic policies migrate (the churn is real, and priced)",
        metrics["consolidate"]["migrations"] > 0
        and metrics["load-balance"]["migrations"] > 0,
    )
    report.check(
        "every policy keeps the SLA above 97%",
        all(m["sla_mean"] > 0.97 for m in metrics.values()),
    )
    emit(report)
    assert report.all_passed, f"shape criteria failed: {[str(c) for c in report.failures]}"
