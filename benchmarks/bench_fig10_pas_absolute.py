"""Figure 10: PAS absolute loads under thrashing load.

"With this strategy, the absolute loads of each VM is consistent with
credit allocations" (§5.7): V20 receives exactly its booked 20 % absolute
capacity in every phase, at whatever frequency PAS selected — and never
more, which is what keeps the frequency (and energy) down.
"""

from repro.experiments import run_fig10

from .conftest import run_and_check


def test_fig10_pas_absolute_loads(benchmark):
    run_and_check(benchmark, run_fig10)
