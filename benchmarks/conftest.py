"""Benchmark harness helpers.

Every benchmark regenerates one table or figure of the paper through
:mod:`repro.experiments`, prints the paper-vs-measured report (run pytest
with ``-s`` to see it inline; reports are also written to
``benchmarks/reports/`` — human-readable ``.txt`` plus machine-readable
``.json`` side by side), asserts the DESIGN.md shape criteria, and times
the full experiment via pytest-benchmark.

Run them with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
import pathlib

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def report_as_dict(report) -> dict:
    """A JSON-safe view of an ExperimentReport (rows, checks, verdict)."""
    return {
        "experiment": report.experiment,
        "title": report.title,
        "rows": [
            {"metric": metric, "paper": paper, "measured": measured}
            for metric, paper, measured in report.rows
        ],
        "checks": [
            {"description": check.description, "passed": check.passed}
            for check in report.checks
        ],
        "all_passed": report.all_passed,
    }


def emit(report) -> None:
    """Print a report; persist .txt and .json under benchmarks/reports/."""
    text = report.render()
    print()
    print(text)
    REPORT_DIR.mkdir(exist_ok=True)
    slug = report.experiment.lower().replace(" ", "_").replace("(", "").replace(")", "")
    (REPORT_DIR / f"{slug}.txt").write_text(text + "\n")
    (REPORT_DIR / f"{slug}.json").write_text(
        json.dumps(report_as_dict(report), sort_keys=True, indent=2, default=str) + "\n"
    )


def run_and_check(benchmark, runner, *, unpack: bool = True):
    """Benchmark *runner* once, emit its report, assert its checks."""
    outcome = benchmark.pedantic(runner, rounds=1, iterations=1)
    report = outcome[-1] if unpack and isinstance(outcome, tuple) else outcome
    emit(report)
    assert report.all_passed, f"shape criteria failed: {[str(c) for c in report.failures]}"
    return outcome
