"""Table 2: execution times on different virtualization platforms (§5.8).

V20 (20 % credit) runs pi-app while V70 runs the three-phase Web-app on the
i7-3770 testbed.  The reproduced pattern: every fix-credit platform
(Hyper-V, ESXi, Xen/credit) degrades 20-50 % under its OnDemand-mode
governor with the paper's vendor ordering; Xen/PAS cancels the degradation;
the variable-credit platforms (SEDF, KVM, VirtualBox) are ~2-3x faster and
never degrade (but, per Fig. 8, cannot save energy).
"""

from repro.experiments import run_table2

from .conftest import run_and_check


def test_table2_platform_comparison(benchmark):
    rows, _ = run_and_check(benchmark, run_table2)
    assert len(rows) == 7
