"""Ablation E: consolidation x DVFS — the §2.3 argument, quantified (ours).

A memory-bound fleet: consolidation packs 3 VMs per 16 GB host and powers
half the fleet off, yet the packed hosts still idle around 50-80 % CPU —
so per-host DVFS (Listing 1.1) saves a further ~30 % on top.  "DVFS is
complementary to consolidation."
"""

from repro.experiments import run_consolidation_ablation

from .conftest import run_and_check


def test_ablation_consolidation_and_dvfs(benchmark):
    run_and_check(benchmark, run_consolidation_ablation, unpack=False)
