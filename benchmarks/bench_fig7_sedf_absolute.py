"""Figure 7: SEDF absolute loads under exact load.

The extra slices exactly compensate the lowered frequency: V20's absolute
load holds at 20 % through the entire experiment — SEDF "brings a solution"
(§5.5) for exact loads.
"""

from repro.experiments import run_fig7

from .conftest import run_and_check


def test_fig7_sedf_absolute_loads(benchmark):
    run_and_check(benchmark, run_fig7)
