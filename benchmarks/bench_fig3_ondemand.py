"""Figure 3: the stock Ondemand governor is aggressive and unstable.

Credit scheduler + stock ondemand, exact loads: the frequency trace
oscillates wildly (orders of magnitude more DVFS transitions than the
authors' stabilised governor of Fig. 4).
"""

from repro.experiments import run_fig3

from .conftest import run_and_check


def test_fig3_ondemand_oscillation(benchmark):
    result, _ = run_and_check(benchmark, run_fig3)
    # Sanity: the oscillation is massive in absolute terms too.
    assert result.frequency_transitions > 1000
