"""§5.2 validation: proportionality of frequency and performance (Eqs. 1-2).

Paper: "We ran different Web-app workloads at the different processor
frequencies ... in order to compute the cf values for each frequency and to
verify that they were constant under various workloads.  We also ran
different pi-app workloads at different processor frequencies and measured
the execution times."
"""

from repro.experiments import validate_frequency_load, validate_frequency_time

from .conftest import run_and_check


def test_eq1_frequency_vs_load(benchmark):
    run_and_check(benchmark, validate_frequency_load)


def test_eq2_frequency_vs_execution_time(benchmark):
    run_and_check(benchmark, validate_frequency_time, unpack=False)
