"""Ablation D: client-visible response times behind the same SLA (ours).

The paper's QoS motivation made measurable: V20 at 90 % of its booked
capacity, latency-tracked.  Under credit + a DVFS governor the starved VM's
bounded queue sits full — p50 responses of ~7 s and double-digit drop rates
— while PAS (and SEDF, under non-thrashing load) serve the same demand at
injection granularity.
"""

from repro.experiments import run_qos_ablation

from .conftest import run_and_check


def test_ablation_qos_response_times(benchmark):
    run_and_check(benchmark, run_qos_ablation, unpack=False)
