"""§5.2 validation: proportionality of credit and performance (Eq. 3).

Paper: "We ran different pi-app workloads on VMs configured with different
credits (with the Xen credit scheduler) ... in order to verify equation 3."
"""

from repro.experiments import validate_credit_time

from .conftest import run_and_check


def test_eq3_credit_vs_execution_time(benchmark):
    run_and_check(benchmark, validate_credit_time, unpack=False)
