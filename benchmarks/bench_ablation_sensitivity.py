"""Ablation F: PAS control-loop parameter sensitivity (ours).

Sweeps the utilisation sample period and the averaging window around the
paper's implicit (1 s x 3) configuration: reaction time to a load surge
scales with (period x window) while steady-state SLA accuracy and DVFS
stability stay flat — the paper's configuration reacts within ~12 s and is
already transition-minimal.
"""

from repro.experiments import run_pas_sensitivity

from .conftest import run_and_check


def test_ablation_pas_sensitivity(benchmark):
    run_and_check(benchmark, run_pas_sensitivity, unpack=False)
