"""Figure 4: the authors' stabilised governor (credit scheduler, exact load).

Same plateaus as Fig. 3 without the oscillation: 1600 MHz while only V20 is
active, 2667 MHz when V70 joins, and a handful of DVFS transitions overall.
"""

from repro.experiments import run_fig4

from .conftest import run_and_check


def test_fig4_stable_governor(benchmark):
    run_and_check(benchmark, run_fig4)
