"""Sweep subsystem benchmark: the full §5 scheduler x governor x load plane.

Times the 24-cell default evaluation grid end to end through the sweep
runner (the substrate every "more scenarios, faster" PR builds on), and
asserts the paper's headline shape claims hold across the whole plane
rather than one figure at a time: only PAS keeps V20's absolute SLA while
the host clocks down, and variable-credit cells never beat it on energy
with the SLA held.
"""

import pytest

from repro.experiments import ScenarioConfig
from repro.sweep import run_sweep, SweepGrid


def run_default_plane():
    grid = SweepGrid(
        {
            "scheduler": ["credit", "credit2", "sedf", "pas"],
            "governor": ["performance", "ondemand", "stable"],
            "v20_load": ["exact", "thrashing"],
        },
        base=ScenarioConfig(seed=1),
        vary_seed=True,
    )
    return run_sweep(grid, workers=1)


def test_sweep_default_plane(benchmark):
    results = benchmark.pedantic(run_default_plane, rounds=1, iterations=1)
    assert len(results) == 24
    # PAS holds the 20% absolute SLA in every one of its cells.
    for cell in results.filter(scheduler="pas"):
        assert cell.metrics["v20_absolute_solo_early"] == pytest.approx(20.0, abs=1.5)
    # Fix-credit schedulers under a DVFS governor break it in every cell.
    for cell in results.filter(scheduler="credit", governor="stable"):
        assert cell.metrics["v20_absolute_solo_early"] < 15.0
    # Aggregated over the plane, PAS spends less energy than pinning max.
    by_gov = {
        (cell.params["scheduler"], cell.params["governor"]): cell
        for cell in results
    }
    for load_cells in ("exact", "thrashing"):
        pas = [
            c.metrics["energy_joules"]
            for c in results.filter(scheduler="pas", v20_load=load_cells)
        ]
        pinned = [
            c.metrics["energy_joules"]
            for c in results.filter(governor="performance", v20_load=load_cells)
            if c.params["scheduler"] != "pas"
        ]
        assert min(pas) < min(pinned)
    assert by_gov  # plane fully indexed
