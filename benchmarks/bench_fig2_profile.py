"""Figure 2: the execution profile at the maximum frequency.

Credit scheduler + performance governor, exact loads: V20 plateaus at 20 %
and V70 at 70 % global load with the frequency pinned at 2667 MHz.
"""

from repro.experiments import run_fig2

from .conftest import run_and_check


def test_fig2_load_profile(benchmark):
    run_and_check(benchmark, run_fig2)
