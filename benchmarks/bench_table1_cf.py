"""Table 1: cf_min on different processors (§5.8).

Replays the §5.2 calibration procedure on every Grid'5000 machine model and
compares the recovered correction factors against the paper's measurements:
X3440 0.94867, L5420 0.99903, E5-2620 0.80338, Opteron 6164 HE 0.99508,
i7-3770 0.86206.
"""

from repro.experiments import run_table1

from .conftest import run_and_check


def test_table1_cf_min(benchmark):
    results, _ = run_and_check(benchmark, run_table1)
    assert len(results) == 5
