"""Figure 5: absolute loads expose the credit scheduler's SLA violation.

While V20 is alone its absolute load sits near 10-12 % — far below the 20 %
the customer bought — because the fix-credit scheduler caps nominal share
regardless of the lowered frequency.  Only when V70's activity forces the
maximum frequency does V20 get its booked 20 %.
"""

from repro.experiments import run_fig5

from .conftest import run_and_check


def test_fig5_credit_scheduler_in_default(benchmark):
    run_and_check(benchmark, run_fig5)
