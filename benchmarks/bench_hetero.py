"""Heterogeneous fleet benchmark: the placement trade-off on dc-hetero.

The acceptance shape for the heterogeneous hardware tier, on the
``dc-hetero`` preset (8 VMs on 2 i7 hosts + 2 big.LITTLE blades):

* efficiency-packing undercuts both static provisioning and
  performance-bursting on fleet energy — the trade-off is measurable;
* the SLA cost of packing the efficient blades stays under one percent;
* ``power-budget`` holds its watt cap on the mixed fleet;
* the big.LITTLE blades report C-state residency (the idle model runs).

Runs without pytest-benchmark (plain assertions) so CI can invoke it with
a bare ``python -m pytest benchmarks/bench_hetero.py``.
"""

from repro.cluster.scenario import run_cluster_scenario
from repro.experiments import preset_config
from repro.experiments.report import ExperimentReport
from repro.sweep.metrics import cluster_metrics

from .conftest import emit

VARIANTS = {
    "static": {"policy": "static"},
    "efficiency": {"placement": "efficiency"},
    "performance": {"placement": "performance"},
    "power-budget": {"policy": "power-budget", "placement": "efficiency"},
}


def test_placement_trade_off_on_the_mixed_fleet():
    config = preset_config("dc-hetero")
    sims = {
        name: run_cluster_scenario(config.with_changes(**changes))
        for name, changes in VARIANTS.items()
    }
    metrics = {name: cluster_metrics(sim) for name, sim in sims.items()}

    report = ExperimentReport(
        experiment="Heterogeneous fleet benchmark",
        title="placement trade-off on dc-hetero (8 VMs, 2 i7 + 2 big.LITTLE)",
    )
    for name, m in metrics.items():
        report.add_row(
            name,
            "Wh / hosts / SLA / peak W",
            f"{m['energy_kwh'] * 1000:6.2f} / {m['hosts_on_mean']:5.2f} / "
            f"{m['sla_mean'] * 100:6.2f}% / {m['power_peak_w']:6.1f}",
        )
    report.check(
        "efficiency-packing beats static provisioning on energy",
        metrics["efficiency"]["energy_kwh"] < metrics["static"]["energy_kwh"],
    )
    report.check(
        "efficiency-packing beats performance-bursting on energy",
        metrics["efficiency"]["energy_kwh"] < metrics["performance"]["energy_kwh"],
    )
    report.check(
        "packing the efficient blades costs under 1% SLA",
        metrics["efficiency"]["sla_mean"]
        >= metrics["performance"]["sla_mean"] - 0.01,
    )
    report.check(
        f"power-budget respects the {config.power_budget_w:.0f} W cap on the mixed fleet",
        metrics["power-budget"]["power_peak_w"] <= config.power_budget_w,
    )
    report.check(
        "the big.LITTLE blades report C-state residency",
        sum(sims["efficiency"].cstate_residency().values()) > 0.0,
    )
    emit(report)
    assert report.all_passed, f"shape criteria failed: {[str(c) for c in report.failures]}"
