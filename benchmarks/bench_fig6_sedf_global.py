"""Figure 6: SEDF global loads under exact load.

SEDF hands V70's unused slices to V20, whose global load rises to ~35 %
while solo (its 20 % absolute demand needs 33 % nominal at 1600 MHz); once
V70 activates, credits are respected and V20 returns to 20 %.
"""

from repro.experiments import run_fig6

from .conftest import run_and_check


def test_fig6_sedf_global_loads(benchmark):
    run_and_check(benchmark, run_fig6)
