"""Store benchmark: cold vs warm sweep wall-time on the stress-fleet grid.

The acceptance shape for the experiment store: re-running a grid against a
populated store must be dominated by blob reads, not simulation — on the
8-guest ``stress-fleet`` preset the warm pass has to come in at least 5x
faster than the cold pass, with every cell a cache hit and the exported
bytes identical.
"""

import time

from repro.experiments import preset_grid
from repro.experiments.report import ExperimentReport
from repro.store import ExperimentStore
from repro.sweep import SweepRunner

from .conftest import emit


def run_cold_then_warm(store_root):
    store = ExperimentStore(store_root)
    grid = preset_grid("stress-fleet")
    timings = {}
    runs = {}
    for phase in ("cold", "warm"):
        runner = SweepRunner(grid, workers=1, store=store)
        started = time.perf_counter()
        results = runner.run()
        timings[phase] = time.perf_counter() - started
        runs[phase] = (runner, results)
    return timings, runs


def test_warm_cache_speedup(benchmark, tmp_path):
    timings, runs = benchmark.pedantic(
        lambda: run_cold_then_warm(tmp_path / "store"), rounds=1, iterations=1
    )
    cold_runner, cold_results = runs["cold"]
    warm_runner, warm_results = runs["warm"]
    speedup = timings["cold"] / timings["warm"]

    report = ExperimentReport(
        experiment="Store benchmark",
        title="content-addressed store: warm re-runs skip the simulation entirely",
    )
    report.add_row("cold sweep (s)", "full simulation", f"{timings['cold']:.3f}")
    report.add_row("warm sweep (s)", "blob reads only", f"{timings['warm']:.3f}")
    report.add_row("speedup", ">= 5x", f"{speedup:.1f}x")
    report.add_row(
        "warm hits / computed",
        f"{len(cold_results)} / 0",
        f"{warm_runner.cache_hits} / {warm_runner.computed}",
    )
    report.check("cold pass computed every cell", cold_runner.computed == len(cold_results))
    report.check(
        "warm pass is all cache hits",
        warm_runner.cache_hits == len(warm_results) and warm_runner.computed == 0,
    )
    report.check("warm export is byte-identical", warm_results.to_json() == cold_results.to_json())
    report.check("warm re-run is at least 5x faster than cold", speedup >= 5.0)
    emit(report)
    assert report.all_passed, f"shape criteria failed: {[str(c) for c in report.failures]}"
