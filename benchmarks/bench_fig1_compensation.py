"""Figure 1: compensation of frequency reduction with credit allocation.

pi-app at 2667 MHz with credits 10..100, then at 2133 MHz with the Eq.-4
credits (top axis of the figure: 13 25 38 50 63 75 88 100 113 125).  The two
execution-time curves must coincide until the compensated credit saturates
at 100 %.
"""

from repro.experiments import run_compensation

from .conftest import run_and_check


def test_fig1_compensation(benchmark):
    points, _ = run_and_check(benchmark, run_compensation)
    # The paper's top-axis credit ladder, rounded: 13 25 38 50 63 75 88 100 113 125.
    ladder = [round(p.compensated_credit) for p in points]
    assert ladder == [13, 25, 38, 50, 63, 75, 88, 100, 113, 125]
