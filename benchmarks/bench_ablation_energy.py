"""Ablation A: energy vs SLA across schedulers (ours).

The paper motivates PAS with energy saving but reports loads and times;
this ablation integrates the package power model over the thrashing profile
to make §3.2's claims measurable: the fix-credit scheduler saves energy but
breaks the SLA, SEDF holds throughput but wastes energy, and only PAS does
both — energy at the credit-scheduler level with the SLA held.
"""

from repro.experiments import run_energy_ablation

from .conftest import run_and_check


def test_ablation_energy_vs_sla(benchmark):
    run_and_check(benchmark, run_energy_ablation, unpack=False)
