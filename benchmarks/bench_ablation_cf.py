"""Ablation C: cf-awareness on non-proportional machines (ours).

Table 1 exists because some machines (Xeon E5-2620, cf_min 0.803) are far
from frequency-proportional.  This ablation runs PAS with and without the
correction factor on that machine: the cf-blind variant under-compensates
credits by ~20 %, silently shrinking the very capacity PAS is supposed to
protect.
"""

from repro.experiments import run_cf_ablation

from .conftest import run_and_check


def test_ablation_cf_awareness(benchmark):
    run_and_check(benchmark, run_cf_ablation, unpack=False)
