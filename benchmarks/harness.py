"""The unified benchmark harness behind ``python -m repro bench``.

One runner for two kinds of benchmark:

* **native benches** — fast, dependency-free timings of the hot paths the
  ROADMAP tracks (the slice-dispatch engine, the cold ``stress-fleet``
  sweep, the store's warm path, the cluster orchestration loop).  These
  form the ``smoke`` suite that CI gates on.
* **pytest benches** — every ``benchmarks/bench_*.py`` reproduction
  benchmark, each executed as its own timed pytest session (the ``full``
  suite; needs ``pytest`` installed).

Results are written as machine-readable ``BENCH_<rev>.json``::

    {
      "schema": "repro-bench/1",
      "rev": "<git short rev or 'unknown'>",
      "python": "3.12.1", "platform": "...", "suite": "smoke",
      "peak_rss_kb": 123456,
      "benches": {
        "stress-fleet-cold": {
          "ok": true, "wall_s": 1.23, "peak_rss_kb": 120000,
          "metrics": {"cells": 2, "cells_per_s": 1.63}
        }, ...
      }
    }

(``peak_rss_kb`` is the process high-water mark *as of* that bench —
monotone across the run, not an isolated per-bench peak.)

``compare_reports`` implements the regression gate: each bench's
``wall_s`` must stay within ``--max-regress`` of the baseline.  When both
reports carry the ``calibration`` bench (a fixed pure-Python spin), wall
times are first normalised by the calibration ratio so a slower/faster CI
runner does not read as a code-level regression.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import sys
import time
from typing import Callable

SCHEMA = "repro-bench/1"

#: Calibration spin iterations — sized to ~200 ms on a 2020s laptop core.
_CALIBRATION_LOOPS = 4_000_000


# --------------------------------------------------------------- plumbing


def git_rev(root: pathlib.Path | None = None) -> str:
    """Short git revision of *root* (``"unknown"`` outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root or pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def peak_rss_kb() -> int | None:
    """Process high-water RSS in KiB (None where rusage is unavailable).

    This is the *cumulative* process peak: per-bench report entries record
    the high-water mark as of that bench's completion, so the series is
    monotone across a run and attributes a peak to the first bench that
    reached it — it is a capacity trace, not an isolated per-bench peak.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return usage // 1024 if sys.platform == "darwin" else usage


# ---------------------------------------------------------- native benches


def _bench_calibration() -> dict:
    """Fixed pure-Python spin — the machine-speed anchor for --compare.

    Best-of-three inner timings; the *best* spin approximates the machine's
    unloaded speed, which is the quantity the normalisation needs (transient
    scheduler noise must not rescale the whole comparison).
    """

    def spin() -> int:
        acc = 0
        for i in range(_CALIBRATION_LOOPS):
            acc += i & 7
        return acc

    best = float("inf")
    checksum = 0
    for _ in range(3):
        started = time.perf_counter()
        checksum = spin()
        best = min(best, time.perf_counter() - started)
    return {"loops": _CALIBRATION_LOOPS, "checksum": checksum, "best_spin_s": best}


def _bench_engine_events() -> dict:
    """Raw event-loop throughput: dense periodic timers, no hypervisor."""
    from repro.sim import Engine, PeriodicTimer

    engine = Engine()
    counts = [0]

    def tick(now: float) -> None:
        counts[0] += 1

    timers = [
        PeriodicTimer(engine, 0.001 * (i + 1), tick, label=f"bench.{i}")
        for i in range(8)
    ]
    for timer in timers:
        timer.start()
    started = time.perf_counter()
    engine.run_until(200.0)
    elapsed = time.perf_counter() - started
    return {
        "events": engine.events_fired,
        "events_per_s": engine.events_fired / elapsed if elapsed > 0 else 0.0,
    }


def _bench_paper_scenario() -> dict:
    """The paper's §5.3 default scenario end to end (800 simulated s)."""
    from repro.experiments import ScenarioConfig, run_scenario

    from repro.obs import collect_outcome, MetricsRegistry

    result = run_scenario(ScenarioConfig())
    registry = MetricsRegistry()
    collect_outcome(registry, result)
    return {
        "sim_seconds": result.host.now,
        "events": result.host.engine.events_fired,
        "energy_joules": result.energy_joules,
        "counters": registry.snapshot(),
    }


def _bench_stress_fleet_cold() -> dict:
    """Cold serial stress-fleet sweep — the ROADMAP's perf benchmark."""
    from repro.experiments import preset_grid
    from repro.sweep import run_sweep

    started = time.perf_counter()
    results = run_sweep(preset_grid("stress-fleet"), workers=1)
    elapsed = time.perf_counter() - started
    return {
        "cells": len(results),
        "cells_per_s": len(results) / elapsed if elapsed > 0 else 0.0,
    }


def _bench_store_warm() -> dict:
    """Cold-vs-warm sweep through a throwaway store (PR-3's contract)."""
    import tempfile

    from repro.experiments import preset_grid
    from repro.store import ExperimentStore
    from repro.sweep import SweepRunner

    grid = preset_grid("stress-fleet")
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        store = ExperimentStore(root)
        timings = {}
        exports = {}
        for phase in ("cold", "warm"):
            runner = SweepRunner(grid, workers=1, store=store)
            started = time.perf_counter()
            results = runner.run()
            timings[phase] = time.perf_counter() - started
            exports[phase] = results.to_json()
    if exports["cold"] != exports["warm"]:
        raise AssertionError("warm store export diverged from cold export")
    return {
        "cold_s": timings["cold"],
        "warm_s": timings["warm"],
        "warm_speedup": timings["cold"] / timings["warm"]
        if timings["warm"] > 0
        else float("inf"),
    }


def _bench_tracing_off() -> dict:
    """Hook-overhead guard: disabled observability must cost nothing.

    Runs the stress-fleet grid plain and then traced+metered, asserts the
    two exports are byte-identical, and reports the overhead ratio.  The
    plain (tracing-off) wall time rides the same ``--compare`` envelope as
    every other bench, so a hook that sneaks per-event cost into the
    disabled hot path fails CI even though tracing is opt-in.
    """
    from repro.experiments import preset_grid
    from repro.obs import MetricsRegistry, observed, Tracer
    from repro.sweep import run_sweep

    grid = preset_grid("stress-fleet")
    started = time.perf_counter()
    plain = run_sweep(grid, workers=1)
    off_s = time.perf_counter() - started

    tracer = Tracer(categories=("sched", "cpufreq"))
    registry = MetricsRegistry()
    started = time.perf_counter()
    with observed(tracer=tracer, metrics=registry):
        traced = run_sweep(grid, workers=1)
    on_s = time.perf_counter() - started
    if plain.to_json() != traced.to_json():
        raise AssertionError("traced sweep export diverged from untraced export")
    return {
        "cells": len(plain.cells),
        "tracing_off_s": off_s,
        "tracing_on_s": on_s,
        "overhead_ratio": on_s / off_s if off_s > 0 else float("inf"),
        "trace_events": len(tracer.events),
        "counters": registry.snapshot(),
    }


def _bench_cluster_epoch() -> dict:
    """The dc-diurnal-small fleet day through the orchestration loop."""
    from repro.cluster.scenario import run_cluster_scenario
    from repro.experiments import get_preset

    config = get_preset("dc-diurnal-small").config
    sim = run_cluster_scenario(config)
    epochs = len(sim.stats)
    return {"epochs": epochs, "vms": config.n_vms, "machines": config.n_machines}


def _bench_hetero_fleet() -> dict:
    """The dc-hetero mixed fleet (frequency domains + C-state accounting)."""
    from repro.cluster.scenario import run_cluster_scenario
    from repro.experiments import get_preset

    config = get_preset("dc-hetero").config
    sim = run_cluster_scenario(config)
    residency = sim.cstate_residency()
    return {
        "epochs": len(sim.stats),
        "vms": config.n_vms,
        "machines": config.total_machines,
        "domain_samples": len(sim.domain_records()),
        "cstate_residency_s": sum(residency.values()),
    }


#: Native benches in run order: name -> callable returning a metrics dict.
NATIVE_BENCHES: dict[str, Callable[[], dict]] = {
    "calibration": _bench_calibration,
    "engine-events": _bench_engine_events,
    "paper-5.3": _bench_paper_scenario,
    "stress-fleet-cold": _bench_stress_fleet_cold,
    "tracing-off": _bench_tracing_off,
    "store-warm": _bench_store_warm,
    "dc-diurnal-small": _bench_cluster_epoch,
    "dc-hetero": _bench_hetero_fleet,
}


# ---------------------------------------------------------- pytest benches


def pytest_bench_files() -> list[pathlib.Path]:
    """Every ``bench_*.py`` module, sorted by name."""
    return sorted(pathlib.Path(__file__).parent.glob("bench_*.py"))


def run_pytest_bench(path: pathlib.Path) -> tuple[bool, str]:
    """Run one bench module in its own pytest process; (ok, tail-of-output)."""
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(path), "-q", "--no-header"],
        capture_output=True,
        text=True,
        cwd=pathlib.Path(__file__).parent.parent,
    )
    tail = "\n".join((proc.stdout + proc.stderr).strip().splitlines()[-4:])
    return proc.returncode == 0, tail


# ----------------------------------------------------------------- running


def available_benches(suite: str) -> list[str]:
    """Bench names in *suite* (``smoke`` = native, ``full`` adds pytest)."""
    names = list(NATIVE_BENCHES)
    if suite == "full":
        names += [path.stem for path in pytest_bench_files()]
    return names


def run_benches(
    names: list[str],
    *,
    suite: str,
    progress: Callable[[str], None] = lambda line: None,
) -> dict:
    """Execute *names* and assemble the report dict (see module docstring)."""
    pytest_by_stem = {path.stem: path for path in pytest_bench_files()}
    benches: dict[str, dict] = {}
    for name in names:
        progress(f"bench {name} ...")
        entry: dict = {"ok": True, "metrics": {}}
        if name in NATIVE_BENCHES:
            # Best-of-two: the *minimum* wall is what the code can do; the
            # mean folds in whatever else the machine was running, which is
            # exactly what a CI regression gate must not measure.
            runner = NATIVE_BENCHES[name]
            best = float("inf")
            for _ in range(2):
                started = time.perf_counter()
                try:
                    metrics = runner()
                except Exception as error:  # a failing bench is a result
                    entry["ok"] = False
                    entry["error"] = f"{type(error).__name__}: {error}"
                    best = time.perf_counter() - started
                    break
                elapsed = time.perf_counter() - started
                if elapsed < best:
                    best = elapsed
                    entry["metrics"] = metrics
            entry["wall_s"] = round(best, 6)
        elif name in pytest_by_stem:
            started = time.perf_counter()
            ok, tail = run_pytest_bench(pytest_by_stem[name])
            entry["ok"] = ok
            entry["metrics"] = {"pytest_tail": tail}
            entry["wall_s"] = round(time.perf_counter() - started, 6)
        else:
            raise KeyError(
                f"unknown bench {name!r}; "
                f"choose from: {', '.join(available_benches('full'))}"
            )
        entry["peak_rss_kb"] = peak_rss_kb()
        benches[name] = entry
        status = "ok" if entry["ok"] else "FAILED"
        progress(f"bench {name}: {status} in {entry['wall_s']:.3f}s")
    return {
        "schema": SCHEMA,
        "rev": git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "suite": suite,
        "peak_rss_kb": peak_rss_kb(),
        "benches": benches,
    }


def default_report_path(report: dict) -> pathlib.Path:
    """``BENCH_<rev>.json`` in the current working directory."""
    return pathlib.Path(f"BENCH_{report['rev']}.json")


def write_report(report: dict, path: pathlib.Path) -> pathlib.Path:
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------- compare


def parse_regress(text: str) -> float:
    """``"25%"`` / ``"25"`` -> 0.25; ``"0.25"`` -> 0.25; ``"1%"`` -> 0.01.

    An explicit ``%`` suffix always means percent; bare numbers above 1
    are taken as percent too (nobody means a 2500% allowance by ``25``).
    """
    explicit_percent = text.endswith("%")
    value = float(text.rstrip("%"))
    if value < 0:
        raise ValueError(f"--max-regress must be >= 0, got {text!r}")
    if explicit_percent or value > 1.0:
        return value / 100.0
    return value


#: Absolute slack added to every gate limit: sub-100 ms benches are pure
#: scheduler jitter at the ratio level, and 50 ms is far below any real
#: regression in the benches the suite gates on.
GRACE_SECONDS = 0.05


def compare_reports(
    current: dict,
    baseline: dict,
    *,
    max_regress: float,
    normalize: bool = True,
) -> tuple[list[str], list[str]]:
    """Gate *current* against *baseline* on per-bench wall time.

    Returns ``(lines, regressed)``: human-readable comparison lines for
    every shared bench, and the names of benches that regressed beyond
    *max_regress* (or failed / went missing outright).  When both reports
    carry the ``calibration`` bench and *normalize* is on, baseline wall
    times are scaled by the machines' calibration ratio first.  Every
    limit gets :data:`GRACE_SECONDS` of absolute slack so
    millisecond-scale benches are not gated on timer noise.
    """
    scale = 1.0
    cur_benches = current.get("benches", {})
    base_benches = baseline.get("benches", {})
    if normalize:
        def _cal(benches: dict) -> float | None:
            entry = benches.get("calibration", {})
            return entry.get("metrics", {}).get("best_spin_s") or entry.get("wall_s")

        cur_cal = _cal(cur_benches)
        base_cal = _cal(base_benches)
        if cur_cal and base_cal:
            scale = cur_cal / base_cal
    lines: list[str] = []
    regressed: list[str] = []
    if scale != 1.0:
        lines.append(f"calibration scale: x{scale:.3f} (baseline walls rescaled)")
    for name, base in sorted(base_benches.items()):
        if name == "calibration":
            continue
        cur = cur_benches.get(name)
        if cur is None:
            lines.append(
                f"{name}: MISSING from current run (baseline {base['wall_s']:.3f}s)"
            )
            regressed.append(name)
            continue
        if not cur.get("ok", False):
            lines.append(f"{name}: FAILED ({cur.get('error', 'see report')})")
            regressed.append(name)
            continue
        allowed = base["wall_s"] * scale * (1.0 + max_regress) + GRACE_SECONDS
        ratio = cur["wall_s"] / (base["wall_s"] * scale) if base["wall_s"] else 1.0
        verdict = "ok"
        if cur["wall_s"] > allowed:
            verdict = f"REGRESSED (limit {allowed:.3f}s)"
            regressed.append(name)
        lines.append(
            f"{name}: {cur['wall_s']:.3f}s vs baseline {base['wall_s']:.3f}s "
            f"(x{ratio:.2f}) {verdict}"
        )
    return lines, regressed


def load_report(path: pathlib.Path) -> dict:
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path} is not a {SCHEMA} report "
            f"(schema: {data.get('schema') if isinstance(data, dict) else '?'})"
        )
    return data
